//! Trace-tier contract tests: bit-identity with the block and step
//! engines, counter behaviour, and every invalidation edge re-proven for
//! traces — self-modifying code inside and across trace pages, unmapping
//! (the module-unload shape), stage-2 execute revocation, generation
//! re-stamping, slot recycling, and the per-call retirement bound.

use camo_cpu::{trace, Cpu, CpuStats, Step};
use camo_isa::{encode, AddrMode, Insn, PacKey, Reg, SysReg};
use camo_mem::{
    AccessType, El, Frame, MemFault, Memory, S1Attr, S2Attr, TableId, KERNEL_BASE, PAGE_SIZE,
};

/// Loads `insns` at KERNEL_BASE (text), with a data page above and a
/// writable+executable page at +2 pages for self-modifying tests.
fn machine(insns: &[Insn]) -> (Cpu, Memory) {
    let mut mem = Memory::new();
    let table = mem.new_table();
    let text = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
    mem.map_new(table, KERNEL_BASE + PAGE_SIZE, S1Attr::kernel_data());
    // Writable AND executable (self-modifying-code playground).
    mem.map_new(
        table,
        KERNEL_BASE + 2 * PAGE_SIZE,
        S1Attr {
            el0_read: false,
            el0_write: false,
            el0_exec: false,
            el1_write: true,
            el1_exec: true,
        },
    );
    for (i, insn) in insns.iter().enumerate() {
        mem.phys_mut()
            .write_u32(text.base() + 4 * i as u64, encode(insn))
            .unwrap();
    }
    let mut cpu = Cpu::default();
    cpu.state.pc = KERNEL_BASE;
    cpu.state
        .set_sysreg(SysReg::Ttbr0El1, TableId::from_raw(table.raw()).raw());
    cpu.state.set_sysreg(SysReg::Ttbr1El1, table.raw());
    cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
    cpu.state
        .set_pauth_key(camo_isa::PauthKey::IB, camo_qarma::QarmaKey::new(7, 9));
    cpu.state.sp_el1 = KERNEL_BASE + 2 * PAGE_SIZE - 64;
    (cpu, mem)
}

/// A hot loop with loads, stores, PAC sign/auth, and immediate-accumulate
/// runs (the superop-folding shape). 200 iterations: far past
/// [`trace::HOT_THRESHOLD`], so the loop block promotes and the trace
/// serves the bulk of the retirement.
fn hot_loop_program(iters: u16) -> Vec<Insn> {
    vec![
        Insn::Movz {
            rd: Reg::x(0),
            imm16: iters,
            shift: 0,
        },
        Insn::Movz {
            rd: Reg::x(1),
            imm16: 0,
            shift: 0,
        },
        Insn::Adr {
            rd: Reg::x(19),
            offset: PAGE_SIZE as i32 - 2 * 4,
        },
        // loop (index 3):
        Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 3,
            shifted: false,
        },
        Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 4,
            shifted: false,
        },
        Insn::Str {
            rt: Reg::x(1),
            rn: Reg::x(19),
            mode: AddrMode::Unsigned(16),
        },
        Insn::Ldr {
            rt: Reg::x(2),
            rn: Reg::x(19),
            mode: AddrMode::Unsigned(16),
        },
        Insn::Pac {
            key: PacKey::IB,
            rd: Reg::x(2),
            rn: Reg::x(0),
        },
        Insn::Aut {
            key: PacKey::IB,
            rd: Reg::x(2),
            rn: Reg::x(0),
        },
        Insn::SubImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 1,
            shifted: false,
        },
        Insn::Cbnz {
            rt: Reg::x(0),
            offset: -4 * 7,
        },
        Insn::Brk { imm: 0x42 },
    ]
}

/// Drives `cpu` with `step` or `run_block` until a `BrkTrap` surfaces.
fn drive(cpu: &mut Cpu, mem: &mut Memory, blocks: bool) {
    for _ in 1..1_000_000 {
        let step = if blocks {
            cpu.run_block(mem).expect("benign program")
        } else {
            cpu.step(mem).expect("benign program")
        };
        if let Step::BrkTrap { imm } = step {
            assert_eq!(imm, 0x42);
            return;
        }
    }
    panic!("program never reached its BRK");
}

enum Engine {
    Step,
    Blocks,
    Traces,
}

fn configure(cpu: &mut Cpu, engine: &Engine) {
    match engine {
        Engine::Step | Engine::Blocks => cpu.set_trace_engine(false),
        Engine::Traces => assert!(cpu.trace_engine(), "traces default on"),
    }
}

fn run_arm(program: &[Insn], engine: Engine) -> (Cpu, Memory) {
    let (mut cpu, mut mem) = machine(program);
    configure(&mut cpu, &engine);
    drive(&mut cpu, &mut mem, !matches!(engine, Engine::Step));
    (cpu, mem)
}

fn assert_arch_identical(a: &Cpu, b: &Cpu) {
    assert_eq!(a.state.gprs, b.state.gprs, "register files diverged");
    assert_eq!(a.state.pc, b.state.pc);
    assert_eq!(a.cycles(), b.cycles(), "cycle counts diverged");
    assert!(
        a.stats().arch_eq(&b.stats()),
        "architectural counters diverged: {:?} vs {:?}",
        a.stats(),
        b.stats()
    );
}

#[test]
fn hot_loop_forms_a_trace_and_stays_bit_identical() {
    let program = hot_loop_program(200);
    let (cpu_s, _) = run_arm(&program, Engine::Step);
    let (cpu_b, _) = run_arm(&program, Engine::Blocks);
    let (cpu_t, _) = run_arm(&program, Engine::Traces);
    assert_arch_identical(&cpu_t, &cpu_s);
    assert_arch_identical(&cpu_t, &cpu_b);
    let stats = cpu_t.stats();
    assert!(stats.trace_misses > 0, "the hot loop installed a trace");
    // One hit is the expected shape: a looping trace retires up to
    // TRACE_CALL_INSNS per entry, so the whole remaining loop fits in a
    // single trace execution.
    assert!(
        stats.trace_hits > 0,
        "the installed trace actually ran: {stats:?}"
    );
    let off = cpu_b.stats();
    assert_eq!(
        (off.trace_hits, off.trace_misses, off.trace_invalidations),
        (0, 0, 0),
        "trace tier off is off"
    );
}

#[test]
fn stats_merge_and_delta_cover_trace_counters() {
    let a = CpuStats {
        trace_hits: 7,
        trace_misses: 3,
        trace_invalidations: 2,
        ..CpuStats::default()
    };
    let mut b = a;
    b.merge(&a);
    assert_eq!(
        (b.trace_hits, b.trace_misses, b.trace_invalidations),
        (14, 6, 4)
    );
    let d = b.delta_since(&a);
    assert_eq!(
        (d.trace_hits, d.trace_misses, d.trace_invalidations),
        (7, 3, 2)
    );
    // Simulator-observability counters: invisible to arch_eq.
    assert!(a.arch_eq(&b));
}

/// A store executed *inside* a warm trace that hits one of the trace's
/// own pages must side-exit after the store and invalidate the trace at
/// its next entry — with the architectural outcome bit-identical to the
/// step path. The loop lives on the writable+executable page; phase 1
/// stores to the data page (trace forms and runs), phase 2 redirects the
/// store into the loop's own page.
#[test]
fn store_into_own_trace_page_side_exits_and_invalidates() {
    let smc_page = KERNEL_BASE + 2 * PAGE_SIZE;
    let loop_body = [
        Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 1,
            shifted: false,
        },
        Insn::Str {
            rt: Reg::x(1),
            rn: Reg::x(19),
            mode: AddrMode::Unsigned(0),
        },
        Insn::SubImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 1,
            shifted: false,
        },
        Insn::Cbnz {
            rt: Reg::x(0),
            offset: -4 * 3,
        },
        Insn::Brk { imm: 0x42 },
    ];
    let run = |traces: bool, use_blocks: bool| {
        let (mut cpu, mut mem) = machine(&[]);
        cpu.set_trace_engine(traces);
        let ctx = cpu.translation_ctx();
        let pa = mem.translate(&ctx, smc_page, AccessType::Execute).unwrap();
        for (i, insn) in loop_body.iter().enumerate() {
            mem.phys_mut()
                .write_u32(pa + 4 * i as u64, encode(insn))
                .unwrap();
        }
        // Phase 1: store to the data page — the loop is benign and hot.
        cpu.state.pc = smc_page;
        cpu.state.gprs[0] = 100;
        cpu.state.gprs[1] = 0;
        cpu.state.gprs[19] = KERNEL_BASE + PAGE_SIZE;
        drive(&mut cpu, &mut mem, use_blocks);
        assert_eq!(cpu.state.gprs[1], 100);
        let warm = cpu.stats();
        // Phase 2: the store now lands in the loop's own code page (a
        // data slot past the code — the *frame* write version moves
        // regardless of which bytes change).
        cpu.state.pc = smc_page;
        cpu.state.gprs[0] = 50;
        cpu.state.gprs[1] = 0;
        cpu.state.gprs[19] = smc_page + 0x800;
        drive(&mut cpu, &mut mem, use_blocks);
        assert_eq!(cpu.state.gprs[1], 50, "self-page stores stay correct");
        (cpu, warm)
    };
    let (cpu_t, warm) = run(true, true);
    let (cpu_s, _) = run(false, false);
    assert_arch_identical(&cpu_t, &cpu_s);
    assert!(warm.trace_hits > 0, "phase 1 ran the trace");
    assert!(
        cpu_t.stats().trace_invalidations > warm.trace_invalidations,
        "phase 2's self-page stores moved the page version: the trace \
         must be discarded at re-entry, not silently re-run"
    );
}

/// Builds a loop spanning two adjacent text pages (the tier-1 blocks end
/// at the page boundary and chain across it, so the trace stitches blocks
/// from both pages and stamps both). Returns the machine plus the loop
/// head VA and the physical address of the second page's `SubImm`.
fn cross_page_machine() -> (Cpu, Memory, u64, u64) {
    let mut mem = Memory::new();
    let table = mem.new_table();
    let p1 = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
    let p2 = mem.map_new(table, KERNEL_BASE + PAGE_SIZE, S1Attr::kernel_text());
    let boundary = KERNEL_BASE + PAGE_SIZE;
    // loop: (boundary-8) add x1,#2 ; (boundary-4) add x1,#3
    //       [page boundary]
    //       (boundary)   sub x0,#1 ; (boundary+4) cbnz x0, loop
    //       (boundary+8) brk #0x42
    let insns: [(u64, Insn); 5] = [
        (
            p1.base() + PAGE_SIZE - 8,
            Insn::AddImm {
                rd: Reg::x(1),
                rn: Reg::x(1),
                imm12: 2,
                shifted: false,
            },
        ),
        (
            p1.base() + PAGE_SIZE - 4,
            Insn::AddImm {
                rd: Reg::x(1),
                rn: Reg::x(1),
                imm12: 3,
                shifted: false,
            },
        ),
        (
            p2.base(),
            Insn::SubImm {
                rd: Reg::x(0),
                rn: Reg::x(0),
                imm12: 1,
                shifted: false,
            },
        ),
        (
            p2.base() + 4,
            Insn::Cbnz {
                rt: Reg::x(0),
                offset: -12,
            },
        ),
        (p2.base() + 8, Insn::Brk { imm: 0x42 }),
    ];
    for (pa, insn) in &insns {
        mem.phys_mut().write_u32(*pa, encode(insn)).unwrap();
    }
    let mut cpu = Cpu::default();
    cpu.state
        .set_sysreg(SysReg::Ttbr0El1, TableId::from_raw(table.raw()).raw());
    cpu.state.set_sysreg(SysReg::Ttbr1El1, table.raw());
    cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
    (cpu, mem, boundary - 8, p2.base())
}

/// Patching code on the *second* page of a two-page trace must be caught
/// by the per-page write-version stamps at trace entry.
#[test]
fn smc_across_trace_pages_invalidates_at_entry() {
    let run = |traces: bool, use_blocks: bool| {
        let (mut cpu, mut mem, loop_va, sub_pa) = cross_page_machine();
        cpu.set_trace_engine(traces);
        // Phase 1: warm the cross-page loop.
        cpu.state.pc = loop_va;
        cpu.state.gprs[0] = 200;
        cpu.state.gprs[1] = 0;
        drive(&mut cpu, &mut mem, use_blocks);
        assert_eq!(cpu.state.gprs[1], 200 * 5);
        let warm = cpu.stats();
        // Patch the second page: sub #1 becomes sub #2.
        mem.phys_mut()
            .write_u32(
                sub_pa,
                encode(&Insn::SubImm {
                    rd: Reg::x(0),
                    rn: Reg::x(0),
                    imm12: 2,
                    shifted: false,
                }),
            )
            .unwrap();
        // Phase 2: an even counter now finishes in half the iterations.
        cpu.state.pc = loop_va;
        cpu.state.gprs[0] = 100;
        cpu.state.gprs[1] = 0;
        drive(&mut cpu, &mut mem, use_blocks);
        assert_eq!(cpu.state.gprs[1], 50 * 5, "patched bytes executed");
        (cpu, warm)
    };
    let (cpu_t, warm) = run(true, true);
    let (cpu_s, _) = run(false, false);
    assert_arch_identical(&cpu_t, &cpu_s);
    assert!(warm.trace_hits > 0, "the cross-page trace ran in phase 1");
    assert!(
        cpu_t.stats().trace_invalidations > warm.trace_invalidations,
        "the second page's moved write version must kill the trace"
    );
}

/// Unmapping one page of a multi-page trace (the module-unload shape)
/// must be caught at the very next entry even though the *entry* page
/// still translates: the generation bump forces the per-page permission
/// re-walk, the second page's walk fails and discards the trace, and
/// tier 1 then raises the translation fault at the architecturally
/// correct instruction — the first one on the unmapped page.
#[test]
fn unmap_discards_the_trace_and_faults_next_entry() {
    let (mut cpu, mut mem, loop_va, _) = cross_page_machine();
    cpu.state.pc = loop_va;
    cpu.state.gprs[0] = 200;
    cpu.state.gprs[1] = 0;
    drive(&mut cpu, &mut mem, true);
    let warm = cpu.stats();
    assert!(warm.trace_hits > 0, "cross-page trace is warm");
    let table = TableId::from_raw(cpu.state.sysreg(SysReg::Ttbr1El1));
    assert!(mem.unmap(table, KERNEL_BASE + PAGE_SIZE));
    cpu.state.pc = loop_va;
    cpu.state.gprs[0] = 10;
    // First call: the entry page still maps, so the trace is probed; the
    // re-walk of the unmapped page discards it, and tier 1 runs the
    // first page's block and chains into the fault.
    let step = loop {
        match cpu.run_block(&mut mem).expect("vectored, not fatal") {
            Step::Executed => continue,
            other => break other,
        }
    };
    assert!(
        matches!(
            step,
            Step::FaultTaken {
                fault: MemFault::Translation { .. }
            }
        ),
        "unmapped trace page must raise the translation fault, got {step:?}"
    );
    assert_eq!(cpu.state.el, El::El1, "vectored to EL1");
    assert!(
        cpu.stats().trace_invalidations > warm.trace_invalidations,
        "the failed per-page re-walk discarded the trace"
    );
}

/// A stage-2 execute revocation must fault the next trace entry even
/// though the trace (and its stage-1 mapping) is warm — the generation
/// bump forces the re-walk, which now fails at stage 2.
#[test]
fn stage2_exec_revocation_faults_next_trace_entry() {
    let program = hot_loop_program(200);
    let (mut cpu, mut mem) = machine(&program);
    drive(&mut cpu, &mut mem, true);
    assert!(cpu.stats().trace_hits > 0, "trace is warm");
    let ctx = cpu.translation_ctx();
    let pa = mem.translate(&ctx, KERNEL_BASE, AccessType::Read).unwrap();
    mem.protect_stage2(
        Frame::containing(pa),
        S2Attr {
            read: true,
            write: false,
            exec: false,
        },
    )
    .unwrap();
    cpu.state.pc = KERNEL_BASE;
    let step = cpu.run_block(&mut mem).expect("vectored, not fatal");
    assert!(
        matches!(
            step,
            Step::FaultTaken {
                fault: MemFault::Stage2 { .. }
            }
        ),
        "revoked execute must fault the trace entry, got {step:?}"
    );
}

/// A generation bump with unchanged bytes (module churn, fork storms —
/// one bump per op) must *re-stamp* the trace after a successful per-page
/// re-walk, not discard it: the whole fleet's traces surviving constant
/// remapping is what makes the tier worth having.
#[test]
fn generation_bump_restamps_the_trace_in_place() {
    let program = hot_loop_program(200);
    let (mut cpu, mut mem) = machine(&program);
    drive(&mut cpu, &mut mem, true);
    let warm = cpu.stats();
    assert!(warm.trace_hits > 0, "trace is warm");
    let table = TableId::from_raw(cpu.state.sysreg(SysReg::Ttbr1El1));
    mem.map_new(table, KERNEL_BASE + 32 * PAGE_SIZE, S1Attr::kernel_data());
    cpu.state.pc = KERNEL_BASE;
    drive(&mut cpu, &mut mem, true);
    let stats = cpu.stats();
    assert_eq!(
        stats.trace_invalidations, warm.trace_invalidations,
        "unrelated remapping must not invalidate the trace"
    );
    assert!(
        stats.trace_hits > warm.trace_hits,
        "the re-stamped trace kept serving"
    );
    assert_eq!(
        stats.trace_misses, warm.trace_misses,
        "no re-install was needed"
    );
}

/// Mirror of the trace cache's slot hash (`trace::trace_slot`), used to
/// construct aliasing hot loops; see the block-engine twin for the
/// kept-in-sync argument.
fn trace_slot(pa: u64) -> usize {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    ((pa >> 2).wrapping_mul(GOLDEN) >> 53) as usize & (trace::TRACE_CACHE_SIZE - 1)
}

/// Two hot loops whose entry addresses alias one trace slot: installing
/// the second evicts the first, and re-running the first must re-install
/// and execute its own ops — never the slot's previous occupant's.
#[test]
fn recycled_trace_slot_never_serves_the_evicted_trace() {
    let (mut cpu, mut mem) = machine(&[]);
    let table = TableId::from_raw(cpu.state.sysreg(SysReg::Ttbr1El1));
    let mut seen: std::collections::HashMap<usize, (u64, u64)> = std::collections::HashMap::new();
    let mut pair = None;
    for i in 0..100_000u64 {
        let va = KERNEL_BASE + (16 + i) * PAGE_SIZE;
        let frame = mem.map_new(table, va, S1Attr::kernel_text());
        let pa = frame.base();
        if let Some(&first) = seen.get(&trace_slot(pa)) {
            pair = Some((first, (va, pa)));
            break;
        }
        seen.insert(trace_slot(pa), (va, pa));
    }
    let ((va_a, pa_a), (va_b, pa_b)) = pair.expect("a collision among 100k frames");
    // Each page hosts: loop: add x1,#k ; sub x0,#1 ; cbnz loop ; brk.
    for (pa, k) in [(pa_a, 3u16), (pa_b, 5u16)] {
        let insns = [
            Insn::AddImm {
                rd: Reg::x(1),
                rn: Reg::x(1),
                imm12: k,
                shifted: false,
            },
            Insn::SubImm {
                rd: Reg::x(0),
                rn: Reg::x(0),
                imm12: 1,
                shifted: false,
            },
            Insn::Cbnz {
                rt: Reg::x(0),
                offset: -8,
            },
            Insn::Brk { imm: 0x42 },
        ];
        for (i, insn) in insns.iter().enumerate() {
            mem.phys_mut()
                .write_u32(pa + 4 * i as u64, encode(insn))
                .unwrap();
        }
    }
    let mut run_loop = |cpu: &mut Cpu, mem: &mut Memory, va: u64| {
        cpu.state.pc = va;
        cpu.state.gprs[0] = 300;
        cpu.state.gprs[1] = 0;
        drive(cpu, mem, true);
        cpu.state.gprs[1]
    };
    assert_eq!(run_loop(&mut cpu, &mut mem, va_a), 300 * 3);
    let after_a = cpu.stats();
    assert!(after_a.trace_hits > 0, "loop A traced");
    assert_eq!(run_loop(&mut cpu, &mut mem, va_b), 300 * 5, "B's own ops");
    let after_b = cpu.stats();
    assert!(after_b.trace_misses > after_a.trace_misses, "B installed");
    assert_eq!(
        run_loop(&mut cpu, &mut mem, va_a),
        300 * 3,
        "A re-ran its own ops after eviction, not B's"
    );
    assert!(
        cpu.stats().trace_misses > after_b.trace_misses,
        "A re-installed into the recycled slot"
    );
}

/// One `run_block` call into a looping trace retires at most
/// [`trace::TRACE_CALL_INSNS`] instructions — the same per-call bound as
/// tier 1's chain cap, so kernel instruction budgets keep their
/// documented overshoot bound with the trace tier on.
#[test]
fn trace_call_retirement_is_bounded() {
    let program = hot_loop_program(200);
    let (mut cpu, mut mem) = machine(&program);
    // Warm the loop trace.
    drive(&mut cpu, &mut mem, true);
    assert!(cpu.stats().trace_hits > 0);
    // Re-enter at the loop head (past the Movz prologue, which would
    // reset the counter) with a counter far past the per-call bound.
    cpu.state.pc = KERNEL_BASE + 4 * 3;
    cpu.state.gprs[0] = 1_000_000;
    cpu.state.gprs[1] = 0;
    let before = cpu.stats().instructions;
    cpu.run_block(&mut mem).expect("mid-loop return");
    let retired = cpu.stats().instructions - before;
    assert!(
        retired <= trace::TRACE_CALL_INSNS,
        "one call retired {retired} > bound {}",
        trace::TRACE_CALL_INSNS
    );
    assert!(
        retired > trace::TRACE_CALL_INSNS / 2,
        "a looping trace should get close to the bound, retired {retired}"
    );
}
