//! Property tests for the telemetry ring and emitter.
//!
//! The properties the observability plane stands on:
//!
//! * memory stays bounded under overflow (the ring never holds more than
//!   its capacity; overflow coalesces instead of allocating or dropping);
//! * drains are lossless and in-order whenever the producer stays within
//!   capacity;
//! * the window sequence is deterministic per seed;
//! * merging every drained window plus the final flush reproduces the
//!   end-of-run totals *exactly*, whatever the cadence/capacity/drain
//!   interleaving.

use camo_cpu::telemetry::{StatWindow, TelemetryConfig, TelemetryEmitter, TelemetryRing};
use camo_cpu::CpuStats;
use proptest::prelude::*;
use std::sync::Arc;

/// Small deterministic generator so properties can derive arbitrary-length
/// op sequences from one sampled seed (the vendored proptest has no
/// collection strategies).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A pseudo-random per-op delta: small distinct-ish counters so sums are
/// sensitive to any lost or duplicated window.
fn delta_from(state: &mut u64) -> CpuStats {
    CpuStats {
        instructions: lcg(state) % 97,
        pac_signs: lcg(state) % 7,
        pac_auth_ok: lcg(state) % 5,
        pac_auth_fail: lcg(state) % 3,
        exceptions: lcg(state) % 4,
        tlb_hits: lcg(state) % 89,
        icache_hits: lcg(state) % 83,
        block_hits: lcg(state) % 13,
        trace_hits: lcg(state) % 11,
        ..CpuStats::default()
    }
}

fn window_from(state: &mut u64, tenant: u64, seq: u64) -> StatWindow {
    StatWindow {
        tenant,
        seq,
        ops: 1 + lcg(state) % 16,
        syscalls: lcg(state) % 8,
        cycles: lcg(state) % 10_000,
        stats: delta_from(state),
    }
}

proptest! {
    /// Within capacity, a drain returns exactly what was pushed, in push
    /// order.
    #[test]
    fn lossless_drain_within_capacity(seed in any::<u64>(), cap in 1usize..32, n in 0usize..32) {
        let n = n.min(cap);
        let ring = TelemetryRing::new(TelemetryConfig { window_ops: 4, capacity: cap });
        let mut state = seed;
        let pushed: Vec<StatWindow> =
            (0..n).map(|i| window_from(&mut state, 0, i as u64)).collect();
        for w in &pushed {
            prop_assert!(ring.try_push(w), "within capacity, push must succeed");
        }
        let mut drained = Vec::new();
        ring.drain_into(&mut drained);
        prop_assert_eq!(drained, pushed);
        prop_assert!(ring.is_empty());
    }

    /// Overflow never grows the ring past capacity and never loses an op:
    /// the emitter coalesces, and drained windows + the final flush merge
    /// back to the exact totals.
    #[test]
    fn bounded_memory_and_exact_totals_under_overflow(
        seed in any::<u64>(),
        cap in 1usize..8,
        window_ops in 1u64..6,
        total_ops in 0u64..200,
    ) {
        let ring = Arc::new(TelemetryRing::new(TelemetryConfig { window_ops, capacity: cap }));
        let mut em = TelemetryEmitter::new(Arc::clone(&ring));
        let mut state = seed;
        let mut expect = StatWindow::new(em.tenant(), 0);
        for _ in 0..total_ops {
            let syscalls = lcg(&mut state) % 4;
            let cycles = lcg(&mut state) % 500;
            let delta = delta_from(&mut state);
            expect.record(syscalls, cycles, &delta);
            em.record(syscalls, cycles, &delta);
            prop_assert!(ring.len() <= cap, "ring exceeded its capacity");
        }
        let mut windows = Vec::new();
        ring.drain_into(&mut windows);
        windows.extend(em.flush());
        let mut merged = StatWindow::new(em.tenant(), 0);
        for w in &windows {
            merged.ops += w.ops;
            merged.syscalls += w.syscalls;
            merged.cycles += w.cycles;
            merged.stats.merge(&w.stats);
        }
        prop_assert_eq!(merged.ops, total_ops, "an op went missing");
        prop_assert_eq!(merged.syscalls, expect.syscalls);
        prop_assert_eq!(merged.cycles, expect.cycles);
        prop_assert_eq!(merged.stats, expect.stats, "window sums must equal totals exactly");
    }

    /// The emitted window sequence is a pure function of the op sequence:
    /// same seed, same drain points, same windows (and dense seqs).
    #[test]
    fn deterministic_window_sequence_per_seed(
        seed in any::<u64>(),
        cap in 1usize..8,
        window_ops in 1u64..6,
        total_ops in 0u64..150,
        drain_every in 1u64..20,
    ) {
        let run = || {
            let ring = Arc::new(TelemetryRing::new(
                TelemetryConfig { window_ops, capacity: cap },
            ));
            let mut em = TelemetryEmitter::new(Arc::clone(&ring));
            let mut state = seed;
            let mut windows = Vec::new();
            for i in 0..total_ops {
                let syscalls = lcg(&mut state) % 4;
                let cycles = lcg(&mut state) % 500;
                let delta = delta_from(&mut state);
                em.record(syscalls, cycles, &delta);
                if i % drain_every == 0 {
                    ring.drain_into(&mut windows);
                }
            }
            ring.drain_into(&mut windows);
            windows.extend(em.flush());
            windows
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "window sequence must be deterministic per seed");
        for (i, w) in a.iter().enumerate() {
            prop_assert_eq!(w.seq, i as u64, "series seqs must be dense and ordered");
        }
    }
}

/// Cross-thread SPSC: a producer thread publishes windows while this
/// thread consumes; everything arrives intact and in order. This is the
/// only concurrent use the ring needs to support (one producer, one
/// consumer), exercised here with real threads to let the atomics fail if
/// the orderings are wrong.
#[test]
fn spsc_across_threads_preserves_order_and_content() {
    const N: u64 = 10_000;
    let ring = Arc::new(TelemetryRing::new(TelemetryConfig {
        window_ops: 1,
        capacity: 8,
    }));
    let producer_ring = Arc::clone(&ring);
    let producer = std::thread::spawn(move || {
        let mut state = 0x5eed_u64;
        for i in 0..N {
            let w = window_from(&mut state, 0, i);
            while !producer_ring.try_push(&w) {
                std::thread::yield_now();
            }
        }
    });
    let mut state = 0x5eed_u64;
    let mut received = 0u64;
    while received < N {
        match ring.pop() {
            Some(got) => {
                let expect = window_from(&mut state, 0, received);
                assert_eq!(got, expect, "window {received} corrupted in transit");
                received += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    producer.join().unwrap();
    assert!(ring.is_empty());
}
