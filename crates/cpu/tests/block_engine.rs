//! Block-translation-engine contract tests: bit-identity with the step
//! path, counter behaviour, and the invalidation edges (self-modifying
//! code, generation bumps, stage-2 downgrades).

use camo_cpu::{Cpu, CpuStats, Step};
use camo_isa::{encode, AddrMode, Insn, PacKey, Reg, SysReg};
use camo_mem::{El, Frame, MemFault, Memory, S1Attr, S2Attr, TableId, KERNEL_BASE, PAGE_SIZE};

/// Loads `insns` at KERNEL_BASE (text), with a data page above and a
/// writable+executable page at +2 pages for self-modifying tests.
fn machine(insns: &[Insn]) -> (Cpu, Memory) {
    let mut mem = Memory::new();
    let table = mem.new_table();
    let text = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
    mem.map_new(table, KERNEL_BASE + PAGE_SIZE, S1Attr::kernel_data());
    // Writable AND executable (self-modifying-code playground).
    mem.map_new(
        table,
        KERNEL_BASE + 2 * PAGE_SIZE,
        S1Attr {
            el0_read: false,
            el0_write: false,
            el0_exec: false,
            el1_write: true,
            el1_exec: true,
        },
    );
    for (i, insn) in insns.iter().enumerate() {
        mem.phys_mut()
            .write_u32(text.base() + 4 * i as u64, encode(insn))
            .unwrap();
    }
    let mut cpu = Cpu::default();
    cpu.state.pc = KERNEL_BASE;
    cpu.state
        .set_sysreg(SysReg::Ttbr0El1, TableId::from_raw(table.raw()).raw());
    cpu.state.set_sysreg(SysReg::Ttbr1El1, table.raw());
    cpu.state
        .set_pauth_key(camo_isa::PauthKey::IB, camo_qarma::QarmaKey::new(7, 9));
    cpu.state.sp_el1 = KERNEL_BASE + 2 * PAGE_SIZE - 64;
    (cpu, mem)
}

/// A little program exercising every block shape: ALU runs, a loop, a
/// call/return pair, loads and stores, PAC sign/auth, and MSR/MRS.
fn mixed_program() -> Vec<Insn> {
    vec![
        // x0 = loop counter, x1 = accumulator, x19 = data page base.
        Insn::Movz {
            rd: Reg::x(0),
            imm16: 50,
            shift: 0,
        },
        Insn::Movz {
            rd: Reg::x(1),
            imm16: 0,
            shift: 0,
        },
        Insn::Adr {
            rd: Reg::x(19),
            offset: PAGE_SIZE as i32 - 2 * 4,
        },
        // loop (index 3):
        Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 3,
            shifted: false,
        },
        Insn::Str {
            rt: Reg::x(1),
            rn: Reg::x(19),
            mode: AddrMode::Unsigned(16),
        },
        Insn::Ldr {
            rt: Reg::x(2),
            rn: Reg::x(19),
            mode: AddrMode::Unsigned(16),
        },
        Insn::Pac {
            key: PacKey::IB,
            rd: Reg::x(2),
            rn: Reg::x(0),
        },
        Insn::Aut {
            key: PacKey::IB,
            rd: Reg::x(2),
            rn: Reg::x(0),
        },
        Insn::Mrs {
            rt: Reg::x(3),
            sr: SysReg::TpidrEl1,
        },
        Insn::Msr {
            sr: SysReg::TpidrEl1,
            rt: Reg::x(1),
        },
        Insn::SubImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 1,
            shifted: false,
        },
        Insn::Cbnz {
            rt: Reg::x(0),
            offset: -4 * 8,
        },
        Insn::Brk { imm: 0x42 },
    ]
}

/// Drives `cpu` with `step` or `run_block` until a `BrkTrap` surfaces,
/// returning the count of engine invocations.
fn drive(cpu: &mut Cpu, mem: &mut Memory, blocks: bool) -> usize {
    for calls in 1..100_000 {
        let step = if blocks {
            cpu.run_block(mem).expect("benign program")
        } else {
            cpu.step(mem).expect("benign program")
        };
        if let Step::BrkTrap { imm } = step {
            assert_eq!(imm, 0x42);
            return calls;
        }
    }
    panic!("program never reached its BRK");
}

/// The architectural subset of two runs must agree; the engine's own
/// counters are allowed (and expected) to differ.
fn assert_arch_identical(a: (&Cpu, &Memory), b: (&Cpu, &Memory)) {
    assert_eq!(a.0.state.gprs, b.0.state.gprs, "register files diverged");
    assert_eq!(a.0.state.pc, b.0.state.pc);
    assert_eq!(a.0.cycles(), b.0.cycles(), "cycle counts diverged");
    assert!(
        a.0.stats().arch_eq(&b.0.stats()),
        "architectural counters diverged: {:?} vs {:?}",
        a.0.stats(),
        b.0.stats()
    );
}

#[test]
fn run_block_is_bit_identical_to_step() {
    let program = mixed_program();
    let (mut cpu_s, mut mem_s) = machine(&program);
    let (mut cpu_b, mut mem_b) = machine(&program);
    let step_calls = drive(&mut cpu_s, &mut mem_s, false);
    let block_calls = drive(&mut cpu_b, &mut mem_b, true);
    assert_arch_identical((&cpu_b, &mem_b), (&cpu_s, &mem_s));
    assert!(
        block_calls < step_calls / 3,
        "blocks must retire many instructions per call ({block_calls} vs {step_calls})"
    );
}

#[test]
fn engine_on_populates_block_counters() {
    let (mut cpu, mut mem) = machine(&mixed_program());
    drive(&mut cpu, &mut mem, true);
    let stats = cpu.stats();
    assert!(stats.block_misses > 0, "first visits decode");
    assert!(stats.block_hits > 0, "loop iterations hit the cache");
    assert!(
        stats.block_hits > stats.block_misses,
        "a 50-iteration loop is hit-dominated: {stats:?}"
    );
}

#[test]
fn engine_off_leaves_block_counters_zero_and_matches_step() {
    let (mut cpu, mut mem) = machine(&mixed_program());
    cpu.set_block_engine(false);
    assert!(!cpu.block_engine());
    drive(&mut cpu, &mut mem, true); // run_block falls back to step
    let stats = cpu.stats();
    assert_eq!(
        (
            stats.block_hits,
            stats.block_misses,
            stats.block_invalidations
        ),
        (0, 0, 0)
    );
    // And the architectural outcome still matches a plain step drive.
    let (mut cpu_s, mut mem_s) = machine(&mixed_program());
    drive(&mut cpu_s, &mut mem_s, false);
    assert_arch_identical((&cpu, &mem), (&cpu_s, &mem_s));
}

#[test]
fn stats_merge_and_delta_cover_block_counters() {
    let a = CpuStats {
        block_hits: 5,
        block_misses: 2,
        block_invalidations: 1,
        ..CpuStats::default()
    };
    let mut b = a;
    b.merge(&a);
    assert_eq!(
        (b.block_hits, b.block_misses, b.block_invalidations),
        (10, 4, 2)
    );
    let d = b.delta_since(&a);
    assert_eq!(
        (d.block_hits, d.block_misses, d.block_invalidations),
        (5, 2, 1)
    );
    // arch_eq ignores the engine counters...
    assert!(a.arch_eq(&b));
    // ...but not the architectural ones.
    let c = CpuStats {
        pac_signs: 1,
        ..CpuStats::default()
    };
    assert!(!a.arch_eq(&c));
}

/// Self-modifying code *within* one straight-line run: the store at the
/// head of the run overwrites an instruction later in the same block.
/// The engine must abort the cached block after the store and re-decode,
/// retiring exactly what the step path retires.
#[test]
fn self_modifying_store_across_a_block_boundary_re_decodes() {
    let smc_page = KERNEL_BASE + 2 * PAGE_SIZE;
    // The SMC page program, patched by itself:
    //   0: ldr x2, [x19]       ; x19 -> encode(add x1, x1, #7)
    //   1: str x2, [x20]       ; x20 -> PA-of-insn-3 (same page!)
    //   2: add x1, x1, #1
    //   3: add x1, x1, #100    ; <- overwritten by insn 1 with add #7
    //   4: brk #0x42
    let patched = [
        Insn::Ldr {
            rt: Reg::x(2),
            rn: Reg::x(19),
            mode: AddrMode::Unsigned(0),
        },
        Insn::Str {
            rt: Reg::x(2),
            rn: Reg::x(20),
            mode: AddrMode::Unsigned(0),
        },
        Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 1,
            shifted: false,
        },
        Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 100,
            shifted: false,
        },
        Insn::Brk { imm: 0x42 },
    ];
    let run = |blocks: bool| {
        let (mut cpu, mut mem) = machine(&[]);
        cpu.set_block_engine(blocks);
        let ctx = cpu.translation_ctx();
        let pa = mem
            .translate(&ctx, smc_page, camo_mem::AccessType::Execute)
            .unwrap();
        for (i, insn) in patched.iter().enumerate() {
            mem.phys_mut()
                .write_u32(pa + 4 * i as u64, encode(insn))
                .unwrap();
        }
        // Stash the replacement doubleword in the data page, point x20 at
        // the target instruction through the writable mapping. The 8-byte
        // store covers insns 3 and 4, so the patch carries both the new
        // add and the BRK that follows it.
        let data = KERNEL_BASE + PAGE_SIZE;
        let word = u64::from(encode(&Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 7,
            shifted: false,
        })) | u64::from(encode(&Insn::Brk { imm: 0x42 })) << 32;
        mem.write_u64(&ctx.clone(), data, word).unwrap();
        cpu.state.gprs[19] = data;
        cpu.state.gprs[20] = smc_page + 4 * 3;
        cpu.state.pc = smc_page;
        drive(&mut cpu, &mut mem, blocks);
        (cpu.state.gprs[1], cpu.cycles(), cpu.stats())
    };
    // Warm pass decodes the original bytes; the store must kill them.
    let (x1_blocks, cycles_blocks, stats_blocks) = run(true);
    let (x1_step, cycles_step, stats_step) = run(false);
    assert_eq!(x1_blocks, 8, "patched add #7 executed, not the stale #100");
    assert_eq!(x1_blocks, x1_step);
    assert_eq!(cycles_blocks, cycles_step);
    assert!(stats_blocks.arch_eq(&stats_step));
}

/// Rewriting an already-cached block's bytes between executions must be
/// observed via the frame write version (counted as an invalidation).
#[test]
fn rewriting_cached_code_invalidates_the_block() {
    let loop_body = [
        Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 5,
            shifted: false,
        },
        Insn::Brk { imm: 0x42 },
    ];
    let (mut cpu, mut mem) = machine(&loop_body);
    // Cache the block.
    drive(&mut cpu, &mut mem, true);
    assert_eq!(cpu.state.gprs[1], 5);
    // Rewrite the add through a direct-to-physical attacker write.
    let ctx = cpu.translation_ctx();
    let pa = mem
        .translate(&ctx, KERNEL_BASE, camo_mem::AccessType::Execute)
        .unwrap();
    mem.phys_mut()
        .write_u32(
            pa,
            encode(&Insn::AddImm {
                rd: Reg::x(1),
                rn: Reg::x(1),
                imm12: 9,
                shifted: false,
            }),
        )
        .unwrap();
    cpu.state.pc = KERNEL_BASE;
    let inval_before = cpu.stats().block_invalidations;
    drive(&mut cpu, &mut mem, true);
    assert_eq!(cpu.state.gprs[1], 14, "new bytes executed");
    assert!(
        cpu.stats().block_invalidations > inval_before,
        "stale block was discarded, not silently reused"
    );
}

/// A stage-2 execute revocation must fault on the very next block entry,
/// even though the block (and its page translation) is warm.
#[test]
fn stage2_downgrade_faults_the_next_block_execution() {
    let loop_body = [
        Insn::AddImm {
            rd: Reg::x(1),
            rn: Reg::x(1),
            imm12: 1,
            shifted: false,
        },
        Insn::Brk { imm: 0x42 },
    ];
    let (mut cpu, mut mem) = machine(&loop_body);
    cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
    drive(&mut cpu, &mut mem, true);
    assert!(cpu.stats().block_misses > 0, "block is cached and warm");
    // Hypervisor revokes execute on the text frame.
    let ctx = cpu.translation_ctx();
    let pa = mem
        .translate(&ctx, KERNEL_BASE, camo_mem::AccessType::Read)
        .unwrap();
    mem.protect_stage2(
        Frame::containing(pa),
        S2Attr {
            read: true,
            write: false,
            exec: false,
        },
    )
    .unwrap();
    cpu.state.pc = KERNEL_BASE;
    let step = cpu.run_block(&mut mem).expect("vectored, not fatal");
    assert!(
        matches!(
            step,
            Step::FaultTaken {
                fault: MemFault::Stage2 { .. }
            }
        ),
        "hoisted entry walk must observe the downgrade, got {step:?}"
    );
    assert_eq!(cpu.state.el, El::El1, "vectored to EL1");
}

/// Mirror of the engine's direct-mapped slot hash (`block::block_slot`),
/// used to *construct* aliasing workloads. Kept in sync by the collision
/// tests themselves: if the hash changes, the found "collisions" stop
/// colliding and the miss-count assertions fail.
fn block_slot(pa: u64) -> usize {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    ((pa >> 2).wrapping_mul(GOLDEN) >> 51) as usize & (camo_cpu::block::BLOCK_CACHE_SIZE - 1)
}

/// Maps fresh kernel-text pages until two frame bases land in the same
/// direct-mapped slot, returning their `(va, pa)` pairs.
fn colliding_text_pages(
    mem: &mut Memory,
    table: TableId,
    slot_of: impl Fn(u64) -> usize,
) -> ((u64, u64), (u64, u64)) {
    let mut seen: std::collections::HashMap<usize, (u64, u64)> = std::collections::HashMap::new();
    for i in 0..100_000u64 {
        let va = KERNEL_BASE + (16 + i) * PAGE_SIZE;
        let frame = mem.map_new(table, va, S1Attr::kernel_text());
        let pa = frame.base();
        if let Some(&first) = seen.get(&slot_of(pa)) {
            return (first, (va, pa));
        }
        seen.insert(slot_of(pa), (va, pa));
    }
    panic!("no slot collision in 100k frames — hash mirror out of sync?");
}

/// Writes `add x1, x1, #imm ; brk #0x42` at physical address `pa`.
fn write_add_brk(mem: &mut Memory, pa: u64, imm: u16) {
    let add = Insn::AddImm {
        rd: Reg::x(1),
        rn: Reg::x(1),
        imm12: imm,
        shifted: false,
    };
    mem.phys_mut().write_u32(pa, encode(&add)).unwrap();
    mem.phys_mut()
        .write_u32(pa + 4, encode(&Insn::Brk { imm: 0x42 }))
        .unwrap();
}

/// Two hot blocks whose physical addresses alias one direct-mapped slot
/// must thrash — every alternating visit is a miss that evicts the other
/// block — while retiring bit-correct results throughout.
#[test]
fn aliasing_hot_blocks_thrash_the_slot_correctly() {
    let (mut cpu, mut mem) = machine(&[]);
    let table = TableId::from_raw(cpu.state.sysreg(SysReg::Ttbr1El1));
    let ((va_a, pa_a), (va_b, pa_b)) = colliding_text_pages(&mut mem, table, block_slot);
    write_add_brk(&mut mem, pa_a, 3);
    write_add_brk(&mut mem, pa_b, 5);

    let rounds = 25;
    for _ in 0..rounds {
        cpu.state.pc = va_a;
        drive(&mut cpu, &mut mem, true);
        cpu.state.pc = va_b;
        drive(&mut cpu, &mut mem, true);
    }
    assert_eq!(
        cpu.state.gprs[1],
        rounds * (3 + 5),
        "every visit executed its own block's bytes"
    );
    let stats = cpu.stats();
    assert!(
        stats.block_misses >= 2 * rounds,
        "alternating aliased visits must each miss (got {} misses)",
        stats.block_misses
    );
    assert_eq!(
        stats.block_hits, 0,
        "an aliased block can never survive to its next visit"
    );
}

/// A recycled slot must never serve stale bytes: cache a block, re-stamp
/// it across a generation bump, evict it through an aliasing block,
/// rewrite its code, bump the generation again — the next visit must
/// decode the *new* bytes, not resurrect any stamped copy.
#[test]
fn recycled_slot_never_serves_stale_block_after_restamp() {
    let (mut cpu, mut mem) = machine(&[]);
    let table = TableId::from_raw(cpu.state.sysreg(SysReg::Ttbr1El1));
    let ((va_a, pa_a), (va_b, pa_b)) = colliding_text_pages(&mut mem, table, block_slot);
    write_add_brk(&mut mem, pa_a, 3);
    write_add_brk(&mut mem, pa_b, 5);
    let gen_bump_base = KERNEL_BASE + 8 * PAGE_SIZE;

    // Cache A.
    cpu.state.pc = va_a;
    drive(&mut cpu, &mut mem, true);
    assert_eq!(cpu.state.gprs[1], 3);

    // Generation bump with unchanged bytes: A re-stamps in place.
    mem.map_new(table, gen_bump_base, S1Attr::kernel_data());
    cpu.state.pc = va_a;
    drive(&mut cpu, &mut mem, true);
    assert_eq!(cpu.state.gprs[1], 6, "re-stamped block still correct");

    // B evicts A from the shared slot.
    cpu.state.pc = va_b;
    drive(&mut cpu, &mut mem, true);
    assert_eq!(cpu.state.gprs[1], 11);

    // Rewrite A's code and bump the generation again.
    write_add_brk(&mut mem, pa_a, 9);
    mem.map_new(table, gen_bump_base + PAGE_SIZE, S1Attr::kernel_data());

    cpu.state.pc = va_a;
    drive(&mut cpu, &mut mem, true);
    assert_eq!(
        cpu.state.gprs[1], 20,
        "recycled slot decoded the rewritten bytes, not a stale copy"
    );
    // And the freshly decoded entry is immediately hittable.
    let hits_before = cpu.stats().block_hits;
    cpu.state.pc = va_a;
    drive(&mut cpu, &mut mem, true);
    assert_eq!(cpu.state.gprs[1], 29);
    assert!(cpu.stats().block_hits > hits_before, "fresh entry cached");
}

/// `ack_ipis` drops the IPI line without allocating, and — like
/// `take_ipis` — must not swallow a device IRQ.
#[test]
fn ack_ipis_clears_the_queue_but_keeps_device_irqs() {
    let (mut cpu, mut mem) = machine(&[Insn::Nop, Insn::Nop]);
    cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
    cpu.raise_irq();
    cpu.post_ipi(camo_cpu::IpiKind::Reschedule);
    cpu.post_ipi(camo_cpu::IpiKind::TlbShootdown);
    assert_eq!(cpu.pending_ipis(), 2);
    cpu.ack_ipis();
    assert_eq!(cpu.pending_ipis(), 0);
    cpu.state.irq_masked = false;
    assert_eq!(cpu.step(&mut mem), Ok(Step::IrqTaken), "device IRQ kept");
}
