//! Property tests: the PAuth sign/authenticate invariants the whole design
//! rests on.

use camo_cpu::pac::{add_pac, auth_pac, strip_pac, KeyClass};
use camo_mem::PointerLayout;
use camo_qarma::QarmaKey;
use proptest::prelude::*;

fn any_key() -> impl Strategy<Value = QarmaKey> {
    (any::<u64>(), any::<u64>()).prop_map(|(w0, k0)| QarmaKey::new(w0, k0))
}

fn any_class() -> impl Strategy<Value = KeyClass> {
    prop::sample::select(vec![KeyClass::Instruction, KeyClass::Data])
}

/// Canonical kernel-half pointers (what kernel code signs).
fn kernel_ptr() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|v| PointerLayout::kernel().strip(v | (1 << 55)))
}

proptest! {
    /// Sign → authenticate with the same key and modifier restores the
    /// canonical pointer.
    #[test]
    fn sign_auth_roundtrip(
        ptr in kernel_ptr(),
        modifier in any::<u64>(),
        key in any_key(),
        class in any_class(),
    ) {
        let signed = add_pac(ptr, modifier, key, true);
        prop_assert_eq!(auth_pac(signed, modifier, key, class, true), Ok(ptr));
    }

    /// Authenticating with a different modifier yields a *non-canonical*
    /// pointer — unless the 15-bit PACs collide, in which case the result
    /// must still be the stripped pointer (graceful degradation the §5.4
    /// rate limiter accounts for).
    #[test]
    fn wrong_modifier_never_yields_a_different_address(
        ptr in kernel_ptr(),
        m1 in any::<u64>(),
        m2 in any::<u64>(),
        key in any_key(),
    ) {
        prop_assume!(m1 != m2);
        let signed = add_pac(ptr, m1, key, true);
        match auth_pac(signed, m2, key, KeyClass::Data, true) {
            Ok(out) => prop_assert_eq!(out, ptr, "collision must still strip correctly"),
            Err(corrupted) => {
                prop_assert!(!PointerLayout::kernel().is_canonical(corrupted));
                prop_assert!(camo_cpu::pac::looks_like_pac_failure(corrupted, true));
            }
        }
    }

    /// An attacker-injected *raw* pointer authenticates only on PAC
    /// collision with the canonical all-ones pattern; otherwise the result
    /// is corrupted, never some other valid address.
    #[test]
    fn raw_pointer_injection_never_redirects(
        ptr in kernel_ptr(),
        modifier in any::<u64>(),
        key in any_key(),
    ) {
        match auth_pac(ptr, modifier, key, KeyClass::Instruction, true) {
            Ok(out) => prop_assert_eq!(out, ptr),
            Err(corrupted) => {
                prop_assert_eq!(PointerLayout::kernel().strip(corrupted ^ (0b01 << 61)), ptr);
            }
        }
    }

    /// Strip removes whatever the signer added, regardless of key.
    #[test]
    fn strip_undoes_sign(ptr in kernel_ptr(), modifier in any::<u64>(), key in any_key()) {
        prop_assert_eq!(strip_pac(add_pac(ptr, modifier, key, true), true), ptr);
    }

    /// Two different keys virtually never produce the same signed pointer
    /// (checked modulo the 15-bit collision rate, with a second probe on
    /// collision).
    #[test]
    fn keys_separate_signatures(
        ptr in kernel_ptr(),
        modifier in any::<u64>(),
        k1 in any_key(),
        k2 in any_key(),
    ) {
        prop_assume!(k1 != k2);
        if add_pac(ptr, modifier, k1, true) == add_pac(ptr, modifier, k2, true) {
            let probe = ptr ^ 0x1000;
            prop_assert_ne!(
                add_pac(probe, modifier, k1, true),
                add_pac(probe, modifier, k2, true),
                "double collision across keys"
            );
        }
    }
}
