//! Completeness audit for [`CpuStats`] aggregation.
//!
//! `merge`, `delta_since`, and the telemetry word codec must each cover
//! *every* counter field, and `arch_eq` must keep its architectural /
//! observability split intact. These tests are written so that adding a
//! new counter to `CpuStats` without teaching the aggregators about it
//! fails here (the exhaustive struct literal below stops compiling the
//! moment a field is added, and the distinct-value sweeps catch a field
//! that compiles but is skipped at runtime).

use camo_cpu::telemetry::{StatWindow, WINDOW_WORDS};
use camo_cpu::CpuStats;

/// An exhaustive `CpuStats` literal with every field distinct and
/// non-zero. No `..Default::default()` tail on purpose: a new field
/// makes this a compile error, which is the audit tripwire.
fn distinct() -> CpuStats {
    CpuStats {
        instructions: 1,
        pac_signs: 2,
        pac_auth_ok: 3,
        pac_auth_fail: 4,
        pac_auth_fail_instr: 5,
        pac_auth_fail_data: 6,
        key_writes: 7,
        exceptions: 8,
        tlb_hits: 9,
        tlb_misses: 10,
        icache_hits: 11,
        icache_misses: 12,
        pac_memo_hits: 13,
        pac_memo_misses: 14,
        ipis: 15,
        block_hits: 16,
        block_misses: 17,
        block_invalidations: 18,
        chain_follows: 19,
        trace_hits: 20,
        trace_misses: 21,
        trace_invalidations: 22,
    }
}

/// Field accessors, one per counter, used to sweep "flip exactly one
/// field" scenarios. Paired with `distinct()`, this list is the runtime
/// half of the audit: it must name all 22 fields.
fn fields() -> Vec<(&'static str, fn(&mut CpuStats) -> &mut u64, bool)> {
    // (name, accessor, architectural?) — architectural fields are the
    // ones arch_eq compares; the rest are observability-only and must
    // NOT affect arch_eq (engines and caches may legally change them).
    vec![
        ("instructions", |s: &mut CpuStats| &mut s.instructions, true),
        ("pac_signs", |s: &mut CpuStats| &mut s.pac_signs, true),
        ("pac_auth_ok", |s: &mut CpuStats| &mut s.pac_auth_ok, true),
        (
            "pac_auth_fail",
            |s: &mut CpuStats| &mut s.pac_auth_fail,
            true,
        ),
        (
            "pac_auth_fail_instr",
            |s: &mut CpuStats| &mut s.pac_auth_fail_instr,
            true,
        ),
        (
            "pac_auth_fail_data",
            |s: &mut CpuStats| &mut s.pac_auth_fail_data,
            true,
        ),
        ("key_writes", |s: &mut CpuStats| &mut s.key_writes, true),
        ("exceptions", |s: &mut CpuStats| &mut s.exceptions, true),
        ("tlb_hits", |s: &mut CpuStats| &mut s.tlb_hits, false),
        ("tlb_misses", |s: &mut CpuStats| &mut s.tlb_misses, false),
        ("icache_hits", |s: &mut CpuStats| &mut s.icache_hits, false),
        (
            "icache_misses",
            |s: &mut CpuStats| &mut s.icache_misses,
            false,
        ),
        (
            "pac_memo_hits",
            |s: &mut CpuStats| &mut s.pac_memo_hits,
            false,
        ),
        (
            "pac_memo_misses",
            |s: &mut CpuStats| &mut s.pac_memo_misses,
            false,
        ),
        ("ipis", |s: &mut CpuStats| &mut s.ipis, true),
        ("block_hits", |s: &mut CpuStats| &mut s.block_hits, false),
        (
            "block_misses",
            |s: &mut CpuStats| &mut s.block_misses,
            false,
        ),
        (
            "block_invalidations",
            |s: &mut CpuStats| &mut s.block_invalidations,
            false,
        ),
        (
            "chain_follows",
            |s: &mut CpuStats| &mut s.chain_follows,
            false,
        ),
        ("trace_hits", |s: &mut CpuStats| &mut s.trace_hits, false),
        (
            "trace_misses",
            |s: &mut CpuStats| &mut s.trace_misses,
            false,
        ),
        (
            "trace_invalidations",
            |s: &mut CpuStats| &mut s.trace_invalidations,
            false,
        ),
    ]
}

#[test]
fn field_list_is_complete() {
    // The telemetry codec destructures CpuStats exhaustively, so its
    // width is the ground truth for the field count.
    assert_eq!(
        fields().len(),
        WINDOW_WORDS - 5,
        "field accessor list out of sync with CpuStats"
    );
}

#[test]
fn merge_covers_every_field() {
    let s = distinct();
    let mut merged = CpuStats::default();
    merged.merge(&s);
    assert_eq!(merged, s, "merge into zero must reproduce the input");

    // Distinct values mean a skipped field shows up as exactly one
    // mismatch; doubling everything catches += vs = typos too.
    let mut doubled = s;
    doubled.merge(&s);
    for (name, get, _) in fields() {
        let mut single = s;
        let mut twice = doubled;
        assert_eq!(
            *get(&mut twice),
            2 * *get(&mut single),
            "merge missed field {name}"
        );
    }
}

#[test]
fn delta_since_covers_every_field() {
    let s = distinct();
    assert_eq!(
        s.delta_since(&CpuStats::default()),
        s,
        "delta from zero must reproduce the totals"
    );
    assert_eq!(
        s.delta_since(&s),
        CpuStats::default(),
        "delta from self must be all-zero — a skipped field stays non-zero"
    );
}

#[test]
fn arch_eq_splits_architectural_from_observability() {
    let base = distinct();
    for (name, get, architectural) in fields() {
        let mut bumped = base;
        *get(&mut bumped) += 1000;
        if architectural {
            assert!(
                !base.arch_eq(&bumped),
                "arch_eq ignored architectural field {name}"
            );
        } else {
            assert!(
                base.arch_eq(&bumped),
                "arch_eq must ignore observability field {name} — engines may change it"
            );
        }
    }
}

#[test]
fn telemetry_codec_covers_every_field() {
    let w = StatWindow {
        tenant: 90,
        seq: 91,
        ops: 92,
        syscalls: 93,
        cycles: 94,
        stats: distinct(),
    };
    let decoded = StatWindow::from_words(&w.to_words());
    assert_eq!(decoded, w, "codec must roundtrip every counter");
}
