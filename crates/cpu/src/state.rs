//! Architectural register state.

use camo_isa::{PauthKey, Reg, SysReg};
use camo_mem::El;
use camo_qarma::QarmaKey;

/// Saved program-status word layout used by `SPSR_EL1` in this model:
/// bit 0 = source EL (0 = EL0, 1 = EL1), bit 7 = IRQ mask (I).
pub(crate) const SPSR_EL1_BIT: u64 = 1;
pub(crate) const SPSR_IRQ_MASK_BIT: u64 = 1 << 7;

/// The register file and system state of one simulated core.
#[derive(Debug, Clone)]
pub struct CpuState {
    /// General-purpose registers x0..x30.
    pub gprs: [u64; 31],
    /// Banked stack pointer for EL0.
    pub sp_el0: u64,
    /// Banked stack pointer for EL1.
    pub sp_el1: u64,
    /// Program counter.
    pub pc: u64,
    /// Current exception level.
    pub el: El,
    /// IRQ mask (PSTATE.I).
    pub irq_masked: bool,
    /// Dense array-backed system-register file: `translation_ctx` reads
    /// `TTBR0/1_EL1` on every step, so lookups must be one index away.
    sysregs: [u64; SysReg::COUNT],
}

impl Default for CpuState {
    fn default() -> Self {
        let mut sysregs = [0u64; SysReg::COUNT];
        // Reset state: PAuth enable bits set (the bootloader model assumes
        // firmware leaves them on; the kernel verifies nothing clears them).
        sysregs[SysReg::SctlrEl1.index()] = camo_isa::sysreg::sctlr::EN_ALL;
        CpuState {
            gprs: [0; 31],
            sp_el0: 0,
            sp_el1: 0,
            pc: 0,
            el: El::El1,
            irq_masked: true,
            sysregs,
        }
    }
}

impl CpuState {
    /// Creates reset state (EL1, IRQs masked, PAuth enabled).
    pub fn new() -> Self {
        CpuState::default()
    }

    /// Reads a register operand (`xzr` reads 0, `sp` reads the banked SP).
    #[inline]
    pub fn read(&self, reg: Reg) -> u64 {
        match reg {
            Reg::X(n) => self.gprs[usize::from(n)],
            Reg::Xzr => 0,
            Reg::Sp => self.sp(),
        }
    }

    /// Writes a register operand (`xzr` discards, `sp` sets the banked SP).
    #[inline]
    pub fn write(&mut self, reg: Reg, value: u64) {
        match reg {
            Reg::X(n) => self.gprs[usize::from(n)] = value,
            Reg::Xzr => {}
            Reg::Sp => self.set_sp(value),
        }
    }

    /// The stack pointer of the current EL.
    pub fn sp(&self) -> u64 {
        match self.el {
            El::El0 => self.sp_el0,
            El::El1 => self.sp_el1,
        }
    }

    /// Sets the stack pointer of the current EL.
    pub fn set_sp(&mut self, value: u64) {
        match self.el {
            El::El0 => self.sp_el0 = value,
            El::El1 => self.sp_el1 = value,
        }
    }

    /// Reads a system register (0 if never written).
    #[inline]
    pub fn sysreg(&self, sr: SysReg) -> u64 {
        self.sysregs[sr.index()]
    }

    /// Writes a system register.
    pub fn set_sysreg(&mut self, sr: SysReg, value: u64) {
        self.sysregs[sr.index()] = value;
    }

    /// Assembles the 128-bit PAuth key currently programmed for `key`.
    pub fn pauth_key(&self, key: PauthKey) -> QarmaKey {
        let (lo, hi) = key.sysregs();
        QarmaKey::new(self.sysreg(lo), self.sysreg(hi))
    }

    /// Programs the 128-bit PAuth key registers for `key`.
    pub fn set_pauth_key(&mut self, key: PauthKey, value: QarmaKey) {
        let (lo, hi) = key.sysregs();
        self.set_sysreg(lo, value.w0);
        self.set_sysreg(hi, value.k0);
    }

    /// Whether `SCTLR_EL1` currently enables `key`.
    ///
    /// The GA key has no enable bit; it is always on.
    pub fn key_enabled(&self, key: PauthKey) -> bool {
        use camo_isa::sysreg::sctlr;
        let sctlr = self.sysreg(SysReg::SctlrEl1);
        let bit = match key {
            PauthKey::IA => sctlr::EN_IA,
            PauthKey::IB => sctlr::EN_IB,
            PauthKey::DA => sctlr::EN_DA,
            PauthKey::DB => sctlr::EN_DB,
            PauthKey::GA => return true,
        };
        sctlr & bit != 0
    }

    /// Encodes the current PSTATE into the SPSR format.
    pub(crate) fn spsr_bits(&self) -> u64 {
        let mut bits = 0;
        if self.el == El::El1 {
            bits |= SPSR_EL1_BIT;
        }
        if self.irq_masked {
            bits |= SPSR_IRQ_MASK_BIT;
        }
        bits
    }

    /// Restores PSTATE from SPSR bits.
    pub(crate) fn restore_spsr(&mut self, bits: u64) {
        self.el = if bits & SPSR_EL1_BIT != 0 {
            El::El1
        } else {
            El::El0
        };
        self.irq_masked = bits & SPSR_IRQ_MASK_BIT != 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xzr_reads_zero_and_discards_writes() {
        let mut state = CpuState::new();
        state.write(Reg::Xzr, 0xdead);
        assert_eq!(state.read(Reg::Xzr), 0);
    }

    #[test]
    fn sp_is_banked_per_el() {
        let mut state = CpuState::new();
        state.el = El::El1;
        state.set_sp(0x1000);
        state.el = El::El0;
        state.set_sp(0x2000);
        assert_eq!(state.sp_el1, 0x1000);
        assert_eq!(state.sp_el0, 0x2000);
        assert_eq!(state.read(Reg::Sp), 0x2000);
        state.el = El::El1;
        assert_eq!(state.read(Reg::Sp), 0x1000);
    }

    #[test]
    fn pauth_key_roundtrip() {
        let mut state = CpuState::new();
        let key = QarmaKey::new(0x1111, 0x2222);
        state.set_pauth_key(PauthKey::IB, key);
        assert_eq!(state.pauth_key(PauthKey::IB), key);
        assert_eq!(state.pauth_key(PauthKey::IA), QarmaKey::new(0, 0));
    }

    #[test]
    fn sctlr_gates_keys() {
        use camo_isa::sysreg::sctlr;
        let mut state = CpuState::new();
        assert!(state.key_enabled(PauthKey::IB), "reset state enables keys");
        state.set_sysreg(SysReg::SctlrEl1, sctlr::EN_ALL & !sctlr::EN_IB);
        assert!(!state.key_enabled(PauthKey::IB));
        assert!(state.key_enabled(PauthKey::IA));
        assert!(state.key_enabled(PauthKey::GA), "GA has no enable bit");
    }

    #[test]
    fn spsr_roundtrip() {
        let mut state = CpuState::new();
        state.el = El::El0;
        state.irq_masked = false;
        let bits = state.spsr_bits();
        state.el = El::El1;
        state.irq_masked = true;
        state.restore_spsr(bits);
        assert_eq!(state.el, El::El0);
        assert!(!state.irq_masked);
    }
}
