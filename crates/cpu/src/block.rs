//! The basic-block translation engine.
//!
//! A *block* is a maximal straight-line run of decoded instructions
//! starting at one physical address, optionally closed by a single
//! branch-class terminator. [`Cpu::run_block`](crate::Cpu::run_block)
//! executes a whole block per call: the fetch permission walk is hoisted
//! to block entry (one two-stage translation covers the block, which by
//! construction never leaves its page), the per-instruction decode is
//! amortised across every future execution of the block, and cycle /
//! instruction accumulation is folded into the CPU's counters once at
//! block exit.
//!
//! # What ends a block
//!
//! Decoding stops, in decreasing order of frequency:
//!
//! * **at a branch** (`B`, `BL`, `BR`, `BLR`, `RET`, `CBZ`, `CBNZ`, and
//!   the combined auth-and-branch forms `RETA*`, `BLRA*`, `BRA*`) — the
//!   branch is *included* as the block's terminator, so a hot loop body
//!   plus its backward branch is a single block;
//! * **at `SVC`, `BRK` or `ERET`** — included as terminators too: the
//!   executor's per-instruction semantics handle them completely, and
//!   the non-`Executed` step they report ends the `run_block` call, so
//!   upcalls and exception-level changes surface to the run loop exactly
//!   as the step path surfaces them;
//! * **at the page boundary** — one permission walk at entry covers the
//!   block only while every instruction shares the entry page;
//! * **before an instruction that breaks block assumptions** — an `MSR`
//!   to a TTBR (the translation context captured at call entry would go
//!   stale), an `MRS` of `CNTVCT_EL0` (reads the live cycle counter,
//!   which batched accumulation folds in only at call exit), or any
//!   PAuth instruction on a pre-ARMv8.3 core (the step path owns the
//!   §5.5 NOP-or-UNDEFINED gating); other `MSR`/`MRS` join the body —
//!   kernel entry/exit is dense with them;
//! * **at a word that does not decode** — the step path raises the
//!   architectural error;
//! * **after [`MAX_BLOCK_INSNS`] instructions** — a memory bound, not a
//!   semantic one; the continuation is simply its own block.
//!
//! # Invalidation
//!
//! Every cached block carries two freshness stamps from decode time: the
//! [`Memory`](camo_mem::Memory) translation **generation** (bumped by
//! every `map` / `unmap` / `set_attr` / `protect_stage2` / `tlb_flush`)
//! and the **write version** of the physical frame holding its code
//! (bumped by every store into the frame — translated or
//! direct-to-physical). A version mismatch means the bytes changed —
//! self-modifying code, a module reloaded into the frame, an attacker
//! write — and discards the block. A generation mismatch with
//! *unchanged* bytes re-stamps the block instead: the permission walk at
//! block entry (which runs on every execution and is what enforces
//! unmaps and permission downgrades) has just revalidated the mapping
//! under the new translation configuration, so the decoded bytes are
//! still exactly what a fresh decode would produce. Without the
//! re-stamp, workloads that remap constantly (module churn, fork storms
//! — one generation bump per op) would flush every block in the machine
//! on every op. A store *inside* a running block that hits the block's
//! own frame aborts execution after that store, so the very next
//! instruction is re-fetched from the modified bytes exactly as the
//! step path would.
//!
//! # The trace tier
//!
//! This cache is *tier 1* of a two-tier engine: each entry carries a
//! hotness counter, and chains headed by a hot block are promoted into
//! flattened, guard-checked **traces** — see [`crate::trace`].

use camo_isa::{decode, Insn, SysReg};
use camo_mem::{PhysMem, PAGE_SIZE};

/// Number of direct-mapped block-cache slots (power of two; blocks start
/// only at branch targets and fall-through points, so this covers far
/// more code than the same number of icache slots).
pub const BLOCK_CACHE_SIZE: usize = 8192;

/// Upper bound on straight-line instructions per block (memory bound;
/// longer runs chain into follow-on blocks).
pub const MAX_BLOCK_INSNS: usize = 128;

/// Upper bound on blocks executed per [`crate::Cpu::run_block`] call
/// (same-page chaining). The cap is what keeps a spin loop from chaining
/// forever inside one call, so run-loop step budgets still bound
/// execution.
pub const MAX_CHAIN: usize = 64;

/// Direct-mapped slot for the block starting at `pa`.
///
/// Fibonacci-hashed rather than low-bits indexed: block start addresses
/// repeat their page offsets across pages (function prologues cluster),
/// so plain `(pa >> 2) & mask` would fold every page onto the same 4 KiB
/// of index space and conflict-miss heavily. The multiply spreads the
/// page number into the index.
pub(crate) fn block_slot(pa: u64) -> usize {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    ((pa >> 2).wrapping_mul(GOLDEN) >> 51) as usize & (BLOCK_CACHE_SIZE - 1)
}

/// One translated basic block.
#[derive(Debug, Clone)]
pub(crate) struct BlockEntry {
    /// Physical address of the first instruction (the cache key).
    pub pa: u64,
    /// Translation generation the block was decoded under (re-stamped in
    /// place when the entry walk revalidates the block under a newer
    /// configuration with unchanged bytes — see the module docs).
    pub generation: u64,
    /// Write version of the code frame at decode time.
    pub version: u64,
    /// The straight-line body, in fetch order.
    pub body: Vec<Insn>,
    /// The closing branch, when the block ended at one.
    pub terminator: Option<Insn>,
    /// Set (with `body` empty and no terminator) when the entry
    /// instruction decodes but must execute through the one-instruction
    /// step semantics (`SVC`, `BRK`, `ERET`, `MSR`/`MRS`, PAuth forms on
    /// a pre-v8.3 core). Caching the decoded form spares the kernel
    /// entry/exit path — which is dense with these — a second permission
    /// walk and an icache probe per visit.
    pub fallback: Option<Insn>,
    /// Cost-model cycles of the whole block (body + terminator),
    /// precomputed at decode time so a fully-executed block charges one
    /// addition. Blocks are decoded under the CPU's current cost model;
    /// swapping the model clears the cache.
    pub cycles: u64,
    /// Cache hits since decode (or since the last promotion), the
    /// hotness signal for the trace tier ([`crate::trace`]): reaching
    /// [`crate::trace::HOT_THRESHOLD`] starts recording the chain this
    /// block heads, and resets the counter so an aliasing second hot
    /// block does not immediately re-trigger a rebuild.
    pub hot: u32,
    /// Set when a recording headed by this block finalized without a loop
    /// edge: the chain is straight-line, a trace adds entry-validation
    /// cost for no stitching win, and re-recording every promotion period
    /// would only repeat the discovery. Cleared naturally when the entry
    /// is evicted or invalidated (the code may have changed shape).
    pub no_trace: bool,
}

/// How the block builder treats one decoded instruction.
enum InsnClass {
    /// Pure straight-line work: joins the body.
    Straight,
    /// Straight-line, but writes memory: joins the body and triggers the
    /// self-modification re-check after it executes.
    Store,
    /// A branch: closes the block as its terminator.
    Terminator,
    /// Must run through the one-instruction step path.
    Fallback,
}

fn classify(insn: &Insn, pauth: bool) -> InsnClass {
    if !pauth && insn.is_pauth() {
        // §5.5 pre-ARMv8.3 gating (hint-form NOPs, register-form
        // UNDEFINED) lives in the step path.
        return InsnClass::Fallback;
    }
    match insn {
        Insn::B { .. }
        | Insn::Bl { .. }
        | Insn::Br { .. }
        | Insn::Blr { .. }
        | Insn::Ret { .. }
        | Insn::Cbz { .. }
        | Insn::Cbnz { .. }
        | Insn::Reta { .. }
        | Insn::Blra { .. }
        | Insn::Bra { .. } => InsnClass::Terminator,
        // SVC/BRK/ERET close a block like a branch: the executor's
        // per-instruction semantics handle them completely, and the
        // non-`Executed` step they report ends the run_block call, so
        // the caller observes the upcall/exception exactly as the step
        // path would. (ERET's EL change makes the captured translation
        // context stale, which is precisely why the call must end.)
        Insn::Svc { .. } | Insn::Brk { .. } | Insn::Eret => InsnClass::Terminator,
        // System-register moves join blocks — kernel entry/exit is dense
        // with them — except the two that break block assumptions: a TTBR
        // write changes the translation context captured at call entry,
        // and a CNTVCT read observes the live cycle counter, which the
        // batched accumulation only folds in at call exit.
        Insn::Msr { sr, .. } => match sr {
            SysReg::Ttbr0El1 | SysReg::Ttbr1El1 => InsnClass::Fallback,
            _ => InsnClass::Straight,
        },
        Insn::Mrs { sr, .. } => match sr {
            SysReg::CntvctEl0 => InsnClass::Fallback,
            _ => InsnClass::Straight,
        },
        Insn::Str { .. } | Insn::Stp { .. } => InsnClass::Store,
        _ => InsnClass::Straight,
    }
}

/// Whether `insn` writes memory (the mid-block self-modification check
/// runs after these).
pub(crate) fn is_store(insn: &Insn) -> bool {
    matches!(insn, Insn::Str { .. } | Insn::Stp { .. })
}

/// Decodes the block starting at `pa`, stamped with the freshness pair it
/// was decoded under. Never fails: a leading instruction that cannot join
/// a block yields an *empty* block, which the executor serves through the
/// step path (and which is itself cached, so repeated `SVC`/`BRK` sites
/// do not re-decode every visit).
pub(crate) fn decode_block(
    phys: &PhysMem,
    pa: u64,
    generation: u64,
    version: u64,
    pauth: bool,
    cost: &camo_isa::CostModel,
) -> Box<BlockEntry> {
    let mut body = Vec::new();
    let mut terminator = None;
    let mut fallback = None;
    let mut cycles = 0u64;
    let mut off = 0u64;
    while pa % PAGE_SIZE + off < PAGE_SIZE && body.len() < MAX_BLOCK_INSNS {
        // Within a page every word is backed (frames are whole pages and
        // the entry translation proved the frame allocated).
        let Some(word) = phys.read_u32(pa + off) else {
            break;
        };
        let Some(insn) = decode(word) else {
            break; // the step path raises UndefinedInsn at this pc
        };
        match classify(&insn, pauth) {
            InsnClass::Straight | InsnClass::Store => {
                cycles += cost.cycles(&insn);
                body.push(insn);
                off += 4;
            }
            InsnClass::Terminator => {
                cycles += cost.cycles(&insn);
                terminator = Some(insn);
                break;
            }
            InsnClass::Fallback => {
                if body.is_empty() {
                    fallback = Some(insn);
                }
                break;
            }
        }
    }
    Box::new(BlockEntry {
        pa,
        generation,
        version,
        body,
        terminator,
        fallback,
        cycles,
        hot: 0,
        no_trace: false,
    })
}
