//! Cycle-modeled AArch64 core with ARMv8.3 pointer authentication.
//!
//! This is the execution substrate of the Camouflage reproduction. The core
//! interprets the `camo-isa` instruction subset against a `camo-mem` memory
//! system, and implements PAuth faithfully enough for the paper's security
//! arguments to be *executed* rather than asserted:
//!
//! * `PAC*`/`AUT*` compute real QARMA-64 MACs over pointers with the key
//!   material currently in the key system registers;
//! * authentication failure produces a non-canonical pointer (error code in
//!   the extension bits) that faults on use — the behaviour the kernel's
//!   brute-force mitigation (§5.4) keys off;
//! * `SCTLR_EL1` enable bits gate each key; pre-ARMv8.3 cores execute the
//!   hint-space forms as NOPs and fault on the register forms (§5.5);
//! * exceptions bank SP, swap EL, and honour the vector layout, so kernel
//!   entry/exit — where the PAuth keys must be switched — is simulated
//!   instruction by instruction;
//! * cycle accounting follows the paper's PA-analogue (4 cycles per PAuth
//!   instruction) on a simple in-order cost model approximating the
//!   Cortex-A53 the paper measured on.
//!
//! # Example
//!
//! ```
//! use camo_cpu::{Cpu, Step};
//! use camo_isa::{encode, Insn, PacKey, Reg};
//! use camo_mem::{Memory, S1Attr, KERNEL_BASE};
//!
//! let mut mem = Memory::new();
//! let table = mem.new_table();
//! let text = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
//! let insn = Insn::Pac { key: PacKey::IB, rd: Reg::x(0), rn: Reg::Xzr };
//! mem.phys_mut().write_u32(text.base(), encode(&insn)).unwrap();
//!
//! let mut cpu = Cpu::default();
//! cpu.state.pc = KERNEL_BASE;
//! cpu.state.set_sysreg(camo_isa::SysReg::Ttbr1El1, table.raw());
//! cpu.state.set_sysreg(camo_isa::SysReg::Ttbr0El1, table.raw());
//! cpu.state.set_pauth_key(camo_isa::PauthKey::IB, camo_qarma::QarmaKey::new(1, 2));
//! cpu.state.gprs[0] = KERNEL_BASE + 0x100;
//! assert_eq!(cpu.step(&mut mem), Ok(Step::Executed));
//! assert_ne!(cpu.state.gprs[0], KERNEL_BASE + 0x100, "pointer got signed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
mod exec;
pub mod pac;
mod state;
pub mod telemetry;
pub mod trace;

pub use exec::{
    ec, vector, CallResult, Cpu, CpuError, CpuStats, HwFeatures, IpiKind, Step, CALL_SENTINEL,
};
pub use state::CpuState;
