//! Pointer-authentication semantics: `AddPAC`, `AuthPAC`, `Strip`.
//!
//! Follows the ARMv8.3 pseudocode structure: the PAC is a QARMA-64 MAC of
//! the *stripped* pointer under the key, tweaked by the modifier, truncated
//! to the bits the address layout leaves free. Authentication failure does
//! not fault immediately (pre-FPAC behaviour): it returns a pointer whose
//! extension bits carry an error code, guaranteeing a translation fault
//! when the pointer is eventually used. That deferred fault is exactly what
//! the paper's §5.4 brute-force mitigation counts.

use camo_mem::layout::truncate_mac;
use camo_mem::PointerLayout;
use camo_qarma::{compute_mac, Qarma, QarmaKey, Sigma, PAC_ROUNDS};
use std::collections::HashMap;

/// Which key class signed a pointer (affects the failure error code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyClass {
    /// Instruction keys (IA/IB): error code `0b01`.
    Instruction,
    /// Data keys (DA/DB): error code `0b10`.
    Data,
}

impl KeyClass {
    fn error_code(self) -> u64 {
        match self {
            KeyClass::Instruction => 0b01,
            KeyClass::Data => 0b10,
        }
    }
}

/// Bit position of the two-bit error code for `layout`.
///
/// Bits 62:61 normally; with TBI the top byte is ignored by translation,
/// so the code moves into the top of the PAC field (bits 54:53) where it
/// still guarantees a non-canonical address (ARMv8.3 `AuthPAC` pseudocode).
#[inline]
fn error_code_shift(layout: &PointerLayout) -> u64 {
    if layout.tbi {
        53
    } else {
        61
    }
}

/// The layout governing a pointer, chosen by its half of the address space.
#[inline]
pub fn layout_for(ptr: u64, tbi_user: bool) -> PointerLayout {
    if (ptr >> 55) & 1 == 1 {
        PointerLayout::kernel()
    } else if tbi_user {
        PointerLayout::user()
    } else {
        PointerLayout {
            va_bits: camo_mem::VA_BITS,
            tbi: false,
        }
    }
}

/// Computes the truncated PAC for `ptr` under `key` and `modifier`.
pub fn compute_pac(ptr: u64, modifier: u64, key: QarmaKey, layout: &PointerLayout) -> u32 {
    let stripped = layout.strip(ptr);
    truncate_mac(compute_mac(stripped, modifier, key), layout)
}

/// Capacity cap for the warm-schedule cache. Keys rotate per task (each
/// task owns user keys), so the cache is cleared wholesale when it fills
/// rather than growing without bound.
const SCHEDULE_CACHE_CAPACITY: usize = 1024;

/// Number of direct-mapped MAC-memo slots (power of two).
const MAC_CACHE_SIZE: usize = 8192;

/// One memoized MAC computation. `compute_mac` is a *pure* function of
/// `(data, modifier, key)`, so a memo entry can never go stale — no
/// invalidation protocol exists because none is needed; the entire input
/// is the tag.
#[derive(Debug, Clone, Copy)]
struct MacSlot {
    data: u64,
    modifier: u64,
    key: u128,
    mac: u32,
}

impl MacSlot {
    /// Direct-mapped slot for an input triple.
    fn slot(data: u64, modifier: u64, key: u128) -> usize {
        let mixed = (data ^ modifier.rotate_left(21) ^ (key as u64) ^ (key >> 64) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> 40) as usize & (MAC_CACHE_SIZE - 1)
    }
}

/// The PAC functional unit: computes PACs with a **warm QARMA schedule**.
///
/// Real PAuth hardware keeps the QARMA key schedule resident in the PAC
/// pipeline; only an `MSR` to a key register forces a re-derivation. This
/// unit reproduces that: one [`Qarma`] instance (whose construction derives
/// w¹, the per-round keys and the inverse S-box) is cached per key value,
/// so `PAC*`/`AUT*` on a hot key skip schedule derivation entirely. The
/// cache is keyed by the full 128-bit key value, so a key change — however
/// it reaches the registers — simply selects (or builds) a different
/// schedule; stale-schedule bugs are impossible by construction.
///
/// Results are bit-identical to the cold free functions ([`add_pac`],
/// [`auth_pac`]): both paths run the same `Qarma::new` derivation.
#[derive(Debug, Clone)]
pub struct PacUnit {
    warm: bool,
    schedules: HashMap<u128, Qarma>,
    /// Direct-mapped memo of whole MAC computations (hot call sites sign
    /// and authenticate the same `(pointer, modifier)` pair every
    /// iteration — the prologue/epilogue pattern Figures 2–4 hammer).
    macs: Vec<Option<MacSlot>>,
    memo_hits: u64,
    memo_misses: u64,
}

impl Default for PacUnit {
    fn default() -> Self {
        PacUnit::new()
    }
}

impl PacUnit {
    /// Creates a warm PAC unit (schedule caching on).
    pub fn new() -> Self {
        PacUnit {
            warm: true,
            schedules: HashMap::new(),
            macs: vec![None; MAC_CACHE_SIZE],
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Enables or disables schedule caching (A/B benchmarking knob).
    pub fn set_caching(&mut self, enabled: bool) {
        self.warm = enabled;
        if !enabled {
            self.schedules.clear();
            self.macs.fill(None);
        }
    }

    /// Whether schedule caching is enabled.
    pub fn caching(&self) -> bool {
        self.warm
    }

    /// Number of key schedules currently resident.
    pub fn warm_schedules(&self) -> usize {
        self.schedules.len()
    }

    /// MAC-memo hits since construction (counted only while warm).
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// MAC-memo misses since construction (counted only while warm).
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// Computes the MAC of `data` under `modifier`, reusing the warm
    /// schedule for `key` (and the memo of recent whole computations) when
    /// available — the engine behind both pointer PACs and `PACGA` generic
    /// MACs.
    #[inline]
    pub fn mac(&mut self, data: u64, modifier: u64, key: QarmaKey) -> u32 {
        if !self.warm {
            return compute_mac(data, modifier, key);
        }
        let k = key.to_u128();
        let slot = MacSlot::slot(data, modifier, k);
        if let Some(hit) = self.macs[slot] {
            if hit.data == data && hit.modifier == modifier && hit.key == k {
                self.memo_hits += 1;
                return hit.mac;
            }
        }
        self.memo_misses += 1;
        // Evict only when a *new* key would overflow the cache; a resident
        // hot key must never be a casualty of its own MAC-memo miss.
        if self.schedules.len() >= SCHEDULE_CACHE_CAPACITY && !self.schedules.contains_key(&k) {
            self.schedules.clear();
        }
        let mac = self
            .schedules
            .entry(k)
            .or_insert_with(|| Qarma::new(key, Sigma::Sigma1, PAC_ROUNDS))
            .mac(data, modifier);
        self.macs[slot] = Some(MacSlot {
            data,
            modifier,
            key: k,
            mac,
        });
        mac
    }

    /// [`compute_pac`] with a warm schedule.
    #[inline]
    pub fn compute_pac(
        &mut self,
        ptr: u64,
        modifier: u64,
        key: QarmaKey,
        layout: &PointerLayout,
    ) -> u32 {
        let stripped = layout.strip(ptr);
        truncate_mac(self.mac(stripped, modifier, key), layout)
    }

    /// [`add_pac`] with a warm schedule.
    #[inline]
    pub fn add_pac(&mut self, ptr: u64, modifier: u64, key: QarmaKey, tbi_user: bool) -> u64 {
        let layout = layout_for(ptr, tbi_user);
        let pac = self.compute_pac(ptr, modifier, key, &layout);
        layout.embed_pac(ptr, pac)
    }

    /// [`auth_pac`] with a warm schedule.
    ///
    /// # Errors
    ///
    /// Returns the corrupted (non-canonical) pointer when authentication
    /// fails, exactly like the cold [`auth_pac`].
    #[inline]
    pub fn auth_pac(
        &mut self,
        ptr: u64,
        modifier: u64,
        key: QarmaKey,
        class: KeyClass,
        tbi_user: bool,
    ) -> Result<u64, u64> {
        let layout = layout_for(ptr, tbi_user);
        let expected = self.compute_pac(ptr, modifier, key, &layout);
        let stripped = layout.strip(ptr);
        if layout.extract_pac(ptr) == expected {
            Ok(stripped)
        } else {
            Err(stripped ^ (class.error_code() << error_code_shift(&layout)))
        }
    }
}

/// `AddPAC`: signs `ptr`, replacing its extension bits with the PAC.
pub fn add_pac(ptr: u64, modifier: u64, key: QarmaKey, tbi_user: bool) -> u64 {
    let layout = layout_for(ptr, tbi_user);
    let pac = compute_pac(ptr, modifier, key, &layout);
    layout.embed_pac(ptr, pac)
}

/// `AuthPAC`: authenticates `ptr`.
///
/// On success returns the canonical (stripped) pointer. On failure returns
/// a *corrupted* pointer: the canonical form with the key-class error code
/// XOR-ed into bits 62:61, which makes it non-canonical so any use faults.
pub fn auth_pac(
    ptr: u64,
    modifier: u64,
    key: QarmaKey,
    class: KeyClass,
    tbi_user: bool,
) -> Result<u64, u64> {
    let layout = layout_for(ptr, tbi_user);
    let expected = compute_pac(ptr, modifier, key, &layout);
    let stripped = layout.strip(ptr);
    if layout.extract_pac(ptr) == expected {
        Ok(stripped)
    } else {
        Err(stripped ^ (class.error_code() << error_code_shift(&layout)))
    }
}

/// `Strip` (`XPACI`/`XPACD`): removes the PAC without authenticating.
pub fn strip_pac(ptr: u64, tbi_user: bool) -> u64 {
    layout_for(ptr, tbi_user).strip(ptr)
}

/// Whether `va` looks like the product of a failed authentication.
///
/// The kernel's fault handler uses this heuristic to distinguish PAC
/// failures (counted against the §5.4 panic threshold) from ordinary bad
/// pointers: the address is non-canonical *and* removing the error code
/// from bits 62:61 yields a canonical address.
pub fn looks_like_pac_failure(va: u64, tbi_user: bool) -> bool {
    classify_pac_failure(va, tbi_user).is_some()
}

/// Which key class produced the failure signature carried by `va`, or
/// `None` when `va` is not a PAC-failure address at all.
///
/// The error codes `0b01` and `0b10` differ in both of bits 62:61, so for
/// any non-canonical address at most one class's code can restore
/// canonicity — the classification is unambiguous. This is what lets the
/// fault handler attribute a failure to the instruction keys (forged code
/// pointer, §4.4/§5.2 backward edge) versus the data keys (forged data
/// pointer, §4.2 signed fields) from the faulting address alone.
pub fn classify_pac_failure(va: u64, tbi_user: bool) -> Option<KeyClass> {
    let layout = layout_for(va, tbi_user);
    if layout.is_canonical(va) {
        return None;
    }
    let shift = error_code_shift(&layout);
    [KeyClass::Instruction, KeyClass::Data]
        .into_iter()
        .find(|class| layout.is_canonical(va ^ (class.error_code() << shift)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: QarmaKey = QarmaKey {
        w0: 0x84be_85ce_9804_e94b,
        k0: 0xec28_02d4_e0a4_88e9,
    };
    const KPTR: u64 = 0xffff_0000_1234_5678;
    const UPTR: u64 = 0x0000_7fff_0000_1000;

    #[test]
    fn sign_then_auth_roundtrip() {
        let signed = add_pac(KPTR, 42, KEY, true);
        assert_ne!(signed, KPTR, "PAC space must be non-trivially used");
        let out = auth_pac(signed, 42, KEY, KeyClass::Instruction, true);
        assert_eq!(out, Ok(KPTR));
    }

    #[test]
    fn wrong_modifier_detected() {
        let signed = add_pac(KPTR, 42, KEY, true);
        let out = auth_pac(signed, 43, KEY, KeyClass::Instruction, true);
        let corrupted = out.unwrap_err();
        assert!(!PointerLayout::kernel().is_canonical(corrupted));
        assert!(looks_like_pac_failure(corrupted, true));
    }

    #[test]
    fn wrong_key_detected() {
        let signed = add_pac(KPTR, 42, KEY, true);
        let other = QarmaKey::new(1, 2);
        assert!(auth_pac(signed, 42, other, KeyClass::Data, true).is_err());
    }

    #[test]
    fn raw_pointer_injection_detected() {
        // An attacker writes an unsigned pointer where a signed one belongs.
        let out = auth_pac(KPTR, 42, KEY, KeyClass::Data, true);
        // All-ones PAC (the canonical pattern) only passes if the MAC
        // happens to be all-ones: overwhelmingly unlikely with this key.
        assert!(out.is_err());
    }

    #[test]
    fn error_codes_differ_by_key_class() {
        let signed = add_pac(KPTR, 1, KEY, true);
        let e_i = auth_pac(signed, 2, KEY, KeyClass::Instruction, true).unwrap_err();
        let e_d = auth_pac(signed, 2, KEY, KeyClass::Data, true).unwrap_err();
        assert_ne!(e_i, e_d);
        assert_eq!(e_i ^ e_d, 0b11 << 61);
    }

    #[test]
    fn user_pointers_use_user_layout() {
        let signed = add_pac(UPTR, 9, KEY, true);
        // With TBI on, the tag byte is untouched.
        assert_eq!(signed >> 56, UPTR >> 56);
        assert_eq!(
            auth_pac(signed, 9, KEY, KeyClass::Instruction, true),
            Ok(UPTR)
        );
    }

    #[test]
    fn strip_is_unauthenticated() {
        let signed = add_pac(KPTR, 42, KEY, true);
        assert_eq!(strip_pac(signed, true), KPTR);
        // Stripping a forged pointer also "succeeds" — that is why XPAC is
        // for debugging, not security.
        assert_eq!(strip_pac(KPTR ^ (0x55 << 48), true), KPTR);
    }

    #[test]
    fn canonical_addresses_are_not_pac_failures() {
        assert!(!looks_like_pac_failure(KPTR, true));
        assert!(!looks_like_pac_failure(UPTR, true));
        assert!(!looks_like_pac_failure(0, true));
        assert_eq!(classify_pac_failure(KPTR, true), None);
    }

    #[test]
    fn failure_classification_recovers_the_key_class() {
        let signed = add_pac(KPTR, 1, KEY, true);
        for (class, offset) in [(KeyClass::Instruction, 0), (KeyClass::Data, 40)] {
            let corrupted = auth_pac(signed, 2, KEY, class, true).unwrap_err();
            // The faulting address may carry a small field offset (a load
            // through the corrupted base); classification must survive it.
            let far = corrupted.wrapping_add(offset);
            assert_eq!(classify_pac_failure(far, true), Some(class), "{class:?}");
        }
        // User-half corrupted pointers classify too.
        let signed = add_pac(UPTR, 1, KEY, true);
        let corrupted = auth_pac(signed, 2, KEY, KeyClass::Data, true).unwrap_err();
        assert_eq!(classify_pac_failure(corrupted, true), Some(KeyClass::Data));
    }

    #[test]
    fn kernel_pac_width_is_15_bits() {
        // Count how many distinct signed forms a kernel pointer can take:
        // the PAC field is 15 bits, so two different modifiers almost surely
        // give different PACs but always stay within the 15-bit field.
        let layout = PointerLayout::kernel();
        for modifier in 0..32u64 {
            let signed = add_pac(KPTR, modifier, KEY, true);
            assert_eq!(layout.strip(signed), KPTR);
            assert!(layout.extract_pac(signed) < (1 << 15));
        }
    }

    #[test]
    fn warm_pac_unit_matches_cold_functions() {
        let mut unit = PacUnit::new();
        let other = QarmaKey::new(0x1357_9bdf, 0x2468_ace0);
        for (key, ptr) in [(KEY, KPTR), (other, UPTR), (KEY, UPTR), (other, KPTR)] {
            for modifier in 0..64u64 {
                assert_eq!(
                    unit.add_pac(ptr, modifier, key, true),
                    add_pac(ptr, modifier, key, true)
                );
                let signed = add_pac(ptr, modifier, key, true);
                for class in [KeyClass::Instruction, KeyClass::Data] {
                    assert_eq!(
                        unit.auth_pac(signed, modifier, key, class, true),
                        auth_pac(signed, modifier, key, class, true)
                    );
                    assert_eq!(
                        unit.auth_pac(signed, modifier ^ 1, key, class, true),
                        auth_pac(signed, modifier ^ 1, key, class, true)
                    );
                }
            }
        }
        assert_eq!(unit.warm_schedules(), 2, "one schedule per distinct key");
        // A cold unit also matches (and stays empty).
        unit.set_caching(false);
        assert_eq!(
            unit.add_pac(KPTR, 42, KEY, true),
            add_pac(KPTR, 42, KEY, true)
        );
        assert_eq!(unit.warm_schedules(), 0);
    }

    #[test]
    fn default_pac_unit_is_usable() {
        // `Default` must match `new()`: a defaulted unit with caching
        // re-enabled has to have its memo storage allocated.
        let mut unit = PacUnit::default();
        assert!(unit.caching());
        unit.set_caching(false);
        unit.set_caching(true);
        assert_eq!(
            unit.add_pac(KPTR, 42, KEY, true),
            add_pac(KPTR, 42, KEY, true)
        );
    }

    #[test]
    fn memo_counters_track_hits_and_misses() {
        let mut unit = PacUnit::new();
        assert_eq!((unit.memo_hits(), unit.memo_misses()), (0, 0));
        unit.add_pac(KPTR, 42, KEY, true);
        assert_eq!((unit.memo_hits(), unit.memo_misses()), (0, 1));
        // Same (pointer, modifier, key): served from the memo.
        unit.add_pac(KPTR, 42, KEY, true);
        assert_eq!((unit.memo_hits(), unit.memo_misses()), (1, 1));
        // A different modifier misses again.
        unit.add_pac(KPTR, 43, KEY, true);
        assert_eq!((unit.memo_hits(), unit.memo_misses()), (1, 2));
        // Cold unit counts nothing.
        unit.set_caching(false);
        unit.add_pac(KPTR, 42, KEY, true);
        assert_eq!((unit.memo_hits(), unit.memo_misses()), (1, 2));
    }

    #[test]
    fn pac_unit_key_change_reschedules() {
        // Changing the key mid-stream must never serve the old schedule.
        let mut unit = PacUnit::new();
        let k1 = QarmaKey::new(1, 2);
        let k2 = QarmaKey::new(3, 4);
        let s1 = unit.add_pac(KPTR, 9, k1, true);
        let s2 = unit.add_pac(KPTR, 9, k2, true);
        assert_ne!(s1, s2);
        assert_eq!(
            unit.auth_pac(s2, 9, k2, KeyClass::Instruction, true),
            Ok(KPTR)
        );
        assert!(unit
            .auth_pac(s2, 9, k1, KeyClass::Instruction, true)
            .is_err());
    }

    #[test]
    fn pac_collision_probability_is_plausible() {
        // With 15-bit PACs, scanning ~2^15 modifiers should produce at least
        // one collision with the PAC of modifier 0 (birthday bound makes
        // this overwhelmingly likely), demonstrating why §5.4 rate-limits
        // guesses rather than relying on PAC width alone.
        let target = compute_pac(KPTR, 0, KEY, &PointerLayout::kernel());
        let hit =
            (1..=100_000u64).any(|m| compute_pac(KPTR, m, KEY, &PointerLayout::kernel()) == target);
        assert!(hit, "expected a 15-bit collision within 100k trials");
    }
}
