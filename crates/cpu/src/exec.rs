//! The instruction executor.

use crate::block::{self, BlockEntry};
use crate::pac::{strip_pac, KeyClass, PacUnit};
use crate::state::CpuState;
use crate::trace::{self, TraceEntry, TraceOutcome, TraceRecorder};
use camo_isa::{decode, AddrMode, CostModel, Insn, InsnKey, PacKey, PairMode, Reg, SysReg};
use camo_mem::{El, Frame, MemFault, Memory, TableId, TranslationCtx, PAGE_SIZE};
use core::fmt;

/// Sentinel link-register value used by [`Cpu::call`]: the executor stops
/// when the PC reaches it. Deliberately *canonical* (a never-mapped
/// kernel-half address) so that it survives a sign → authenticate round
/// trip through an instrumented callee's prologue and epilogue unchanged.
pub const CALL_SENTINEL: u64 = 0xFFFF_DEAD_BEEF_0000;

/// Exception-class codes stored in `ESR_EL1[31:26]` (ARM ARM subset).
pub mod ec {
    /// Unknown/undefined instruction.
    pub const UNKNOWN: u64 = 0x00;
    /// Trapped `MSR`/`MRS` from an insufficient EL.
    pub const TRAPPED_MSR: u64 = 0x18;
    /// Instruction abort from a lower EL.
    pub const INSN_ABORT_LOWER: u64 = 0x20;
    /// Instruction abort, same EL.
    pub const INSN_ABORT_SAME: u64 = 0x21;
    /// `SVC` from AArch64.
    pub const SVC64: u64 = 0x15;
    /// Data abort from a lower EL.
    pub const DATA_ABORT_LOWER: u64 = 0x24;
    /// Data abort, same EL.
    pub const DATA_ABORT_SAME: u64 = 0x25;
}

/// Exception-vector offsets from `VBAR_EL1` (SP_ELx forms).
pub mod vector {
    /// Synchronous exception from the current EL.
    pub const SYNC_SAME_EL: u64 = 0x200;
    /// IRQ from the current EL.
    pub const IRQ_SAME_EL: u64 = 0x280;
    /// Synchronous exception from a lower EL.
    pub const SYNC_LOWER_EL: u64 = 0x400;
    /// IRQ from a lower EL.
    pub const IRQ_LOWER_EL: u64 = 0x480;
}

/// Hardware feature switches for the simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwFeatures {
    /// ARMv8.3-PAuth implemented.
    ///
    /// When `false` (an ARMv8.0 core such as the paper's Raspberry Pi 3),
    /// the register-form and combined PAuth instructions are UNDEFINED,
    /// while the hint-space forms (`PACIA1716`, `PACIASP`, ...) execute as
    /// `NOP` — the behaviour §5.5's backward-compatible build relies on.
    pub pauth: bool,
}

impl Default for HwFeatures {
    fn default() -> Self {
        HwFeatures { pauth: true }
    }
}

/// Counters exposed for tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Retired instructions.
    pub instructions: u64,
    /// PAC sign operations executed.
    pub pac_signs: u64,
    /// Successful authentications.
    pub pac_auth_ok: u64,
    /// Failed authentications (corrupted pointer produced).
    pub pac_auth_fail: u64,
    /// Failed authentications under an instruction key (IA/IB) — the
    /// forward/backward code-pointer edges. Always sums with
    /// [`CpuStats::pac_auth_fail_data`] to [`CpuStats::pac_auth_fail`].
    pub pac_auth_fail_instr: u64,
    /// Failed authentications under a data key (DA/DB) — signed data
    /// fields such as `file.f_ops` or the saved kernel SP.
    pub pac_auth_fail_data: u64,
    /// Writes to PAuth key system registers.
    pub key_writes: u64,
    /// Exceptions taken (SVC, aborts, IRQs).
    pub exceptions: u64,
    /// Software-TLB hits, mirrored from the memory system after each step.
    ///
    /// The TLB lives in [`Memory`] (it caches translations for *every*
    /// requester, not just this core); the counters here are the memory
    /// system's totals as of the end of the last [`Cpu::step`].
    pub tlb_hits: u64,
    /// Software-TLB misses, mirrored like [`CpuStats::tlb_hits`].
    pub tlb_misses: u64,
    /// Decoded-instruction-cache hits (this core's fetch pipeline).
    pub icache_hits: u64,
    /// Decoded-instruction-cache misses.
    pub icache_misses: u64,
    /// PAC-unit MAC-memo hits (whole sign/auth computations served from
    /// the memo instead of running QARMA).
    pub pac_memo_hits: u64,
    /// PAC-unit MAC-memo misses (QARMA actually ran).
    pub pac_memo_misses: u64,
    /// Inter-processor interrupts delivered to this core.
    pub ipis: u64,
    /// Block-translation-engine cache hits (whole decoded blocks served
    /// without re-decoding). Zero when the engine is disabled or the core
    /// is driven through [`Cpu::step`].
    pub block_hits: u64,
    /// Block-translation-engine cache misses (blocks decoded fresh).
    pub block_misses: u64,
    /// Cached blocks discarded because a freshness stamp no longer held —
    /// the translation generation moved (map/unmap/`set_attr`/stage-2
    /// change) or the code frame's write version moved (self-modifying or
    /// attacker-written code).
    pub block_invalidations: u64,
    /// Chain continuations inside one [`Cpu::run_block`] call — block or
    /// trace exits that stayed in the call instead of returning to the
    /// run loop. This is where chaining actually pays: `block_hits` alone
    /// counts probes, not the dispatch round-trips avoided.
    pub chain_follows: u64,
    /// Trace-tier hits (a validated trace executed; see [`crate::trace`]).
    pub trace_hits: u64,
    /// Trace-tier misses — traces built and installed (the tier never
    /// probes without either hitting or building, so "miss" counts
    /// constructions, mirroring `block_misses` counting decodes).
    pub trace_misses: u64,
    /// Cached traces discarded because a freshness stamp no longer held —
    /// a constituent page's bytes changed, or a translation-generation
    /// move re-walked the pages and found a mapping gone or moved.
    pub trace_invalidations: u64,
}

impl CpuStats {
    /// The counter deltas accumulated since `baseline` was captured —
    /// the per-operation attribution primitive: snapshot merged stats,
    /// run an operation, and `delta_since` the snapshot to get exactly
    /// the work that operation performed. Every field is a monotonic
    /// counter, so the subtraction is saturating only as a guard against
    /// mismatched snapshots.
    pub fn delta_since(&self, baseline: &CpuStats) -> CpuStats {
        CpuStats {
            instructions: self.instructions.saturating_sub(baseline.instructions),
            pac_signs: self.pac_signs.saturating_sub(baseline.pac_signs),
            pac_auth_ok: self.pac_auth_ok.saturating_sub(baseline.pac_auth_ok),
            pac_auth_fail: self.pac_auth_fail.saturating_sub(baseline.pac_auth_fail),
            pac_auth_fail_instr: self
                .pac_auth_fail_instr
                .saturating_sub(baseline.pac_auth_fail_instr),
            pac_auth_fail_data: self
                .pac_auth_fail_data
                .saturating_sub(baseline.pac_auth_fail_data),
            key_writes: self.key_writes.saturating_sub(baseline.key_writes),
            exceptions: self.exceptions.saturating_sub(baseline.exceptions),
            tlb_hits: self.tlb_hits.saturating_sub(baseline.tlb_hits),
            tlb_misses: self.tlb_misses.saturating_sub(baseline.tlb_misses),
            icache_hits: self.icache_hits.saturating_sub(baseline.icache_hits),
            icache_misses: self.icache_misses.saturating_sub(baseline.icache_misses),
            pac_memo_hits: self.pac_memo_hits.saturating_sub(baseline.pac_memo_hits),
            pac_memo_misses: self
                .pac_memo_misses
                .saturating_sub(baseline.pac_memo_misses),
            ipis: self.ipis.saturating_sub(baseline.ipis),
            block_hits: self.block_hits.saturating_sub(baseline.block_hits),
            block_misses: self.block_misses.saturating_sub(baseline.block_misses),
            block_invalidations: self
                .block_invalidations
                .saturating_sub(baseline.block_invalidations),
            chain_follows: self.chain_follows.saturating_sub(baseline.chain_follows),
            trace_hits: self.trace_hits.saturating_sub(baseline.trace_hits),
            trace_misses: self.trace_misses.saturating_sub(baseline.trace_misses),
            trace_invalidations: self
                .trace_invalidations
                .saturating_sub(baseline.trace_invalidations),
        }
    }

    /// Accumulates `other` into `self` — the cluster/shard aggregation
    /// primitive. Totals (instructions, cache counters, PAC counters) add;
    /// there is no per-field averaging, so merged stats read as "work done
    /// by the whole set of cores".
    pub fn merge(&mut self, other: &CpuStats) {
        self.instructions += other.instructions;
        self.pac_signs += other.pac_signs;
        self.pac_auth_ok += other.pac_auth_ok;
        self.pac_auth_fail += other.pac_auth_fail;
        self.pac_auth_fail_instr += other.pac_auth_fail_instr;
        self.pac_auth_fail_data += other.pac_auth_fail_data;
        self.key_writes += other.key_writes;
        self.exceptions += other.exceptions;
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.icache_hits += other.icache_hits;
        self.icache_misses += other.icache_misses;
        self.pac_memo_hits += other.pac_memo_hits;
        self.pac_memo_misses += other.pac_memo_misses;
        self.ipis += other.ipis;
        self.block_hits += other.block_hits;
        self.block_misses += other.block_misses;
        self.block_invalidations += other.block_invalidations;
        self.chain_follows += other.chain_follows;
        self.trace_hits += other.trace_hits;
        self.trace_misses += other.trace_misses;
        self.trace_invalidations += other.trace_invalidations;
    }

    /// Whether the *architectural* counters of two runs agree — retired
    /// instructions, PAC sign/auth outcomes, key writes, exceptions, and
    /// IPIs. This is the identity the block engine (and the fast-path
    /// caches before it) must preserve across an A/B toggle.
    ///
    /// The simulator-observability counters — TLB, decoded-instruction
    /// cache, PAC memo, block-cache and trace-cache hit/miss/invalidation
    /// counts, and chain follows — are *excluded*: they describe how the
    /// simulator reached the architectural result, and legitimately
    /// differ between engines (e.g. a cached block performs one
    /// permission walk where the step path performs one per instruction).
    pub fn arch_eq(&self, other: &CpuStats) -> bool {
        (
            self.instructions,
            self.pac_signs,
            self.pac_auth_ok,
            self.pac_auth_fail,
            self.pac_auth_fail_instr,
            self.pac_auth_fail_data,
            self.key_writes,
            self.exceptions,
            self.ipis,
        ) == (
            other.instructions,
            other.pac_signs,
            other.pac_auth_ok,
            other.pac_auth_fail,
            other.pac_auth_fail_instr,
            other.pac_auth_fail_data,
            other.key_writes,
            other.exceptions,
            other.ipis,
        )
    }
}

/// The kinds of inter-processor interrupt the cluster protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpiKind {
    /// The scheduler on another core changed this core's runqueue
    /// (task migration, balancing): re-evaluate scheduling decisions.
    Reschedule,
    /// A translation or permission changed on another core: discard
    /// cached translations. In this simulator the shared [`Memory`]
    /// generation counter already makes stale entries unservable the
    /// instant the mutation lands, so the IPI carries the *protocol*
    /// (acknowledgement, accounting) rather than the correctness.
    TlbShootdown,
}

/// One decoded-instruction-cache entry: the decoded form of the word that
/// was resident at physical address `pa` when its frame was at `version`.
/// Any write into the frame bumps its version and kills the entry —
/// self-modifying code decodes fresh on the very next fetch.
#[derive(Debug, Clone, Copy)]
struct IcacheEntry {
    pa: u64,
    version: u64,
    insn: Insn,
}

/// Number of direct-mapped decoded-instruction-cache slots (power of two;
/// indexed by word address, so 16 KiB of code fits conflict-free).
const ICACHE_SIZE: usize = 4096;

/// Direct-mapped slot for the instruction word at `pa`.
fn icache_slot(pa: u64) -> usize {
    (pa >> 2) as usize & (ICACHE_SIZE - 1)
}

/// Outcome of the fetch-and-decode front end.
enum FetchResult {
    /// A decoded instruction (from the cache or a fresh decode).
    Insn(Insn),
    /// The fetch faulted (translation, permission, alignment, backing).
    Fault(MemFault),
    /// The word at the PC does not decode.
    Undefined(u32),
}

/// What a single [`Cpu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An ordinary instruction retired.
    Executed,
    /// `SVC` executed; if a vector base is installed the PC now points at
    /// the EL1 synchronous entry.
    SvcTaken {
        /// The SVC immediate.
        imm: u16,
    },
    /// `BRK` executed. The simulator repurposes `BRK` as an *upcall* to the
    /// host-side kernel logic: the executor returns to the harness without
    /// vectoring, and the PC has already advanced past the `BRK`.
    BrkTrap {
        /// The BRK immediate, identifying the upcall.
        imm: u16,
    },
    /// `ERET` executed.
    EretTo {
        /// Destination exception level.
        el: El,
        /// Destination program counter.
        pc: u64,
    },
    /// A synchronous fault was taken to EL1 (vector base installed).
    FaultTaken {
        /// The faulting access.
        fault: MemFault,
    },
    /// An interrupt was taken.
    IrqTaken,
    /// The PC reached [`CALL_SENTINEL`].
    SentinelReturn,
}

/// Unrecoverable simulation errors (no handler installed, or a bug in the
/// simulated program).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// Word did not decode (or used a feature the core lacks).
    UndefinedInsn {
        /// The raw word.
        word: u32,
        /// Where it was fetched.
        pc: u64,
    },
    /// A fault occurred with no vector base installed.
    UnhandledFault {
        /// The fault.
        fault: MemFault,
        /// PC of the faulting instruction.
        pc: u64,
    },
    /// [`Cpu::call`] exceeded its step budget.
    TimedOut {
        /// The configured budget.
        steps: u64,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::UndefinedInsn { word, pc } => {
                write!(f, "undefined instruction {word:#010x} at {pc:#x}")
            }
            CpuError::UnhandledFault { fault, pc } => {
                write!(f, "unhandled fault at {pc:#x}: {fault}")
            }
            CpuError::TimedOut { steps } => write!(f, "execution exceeded {steps} steps"),
        }
    }
}

impl std::error::Error for CpuError {}

/// Result of a [`Cpu::call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallResult {
    /// The callee's `x0` on return.
    pub x0: u64,
    /// Cycles consumed by the call.
    pub cycles: u64,
    /// Instructions retired by the call.
    pub instructions: u64,
}

/// One simulated AArch64 core.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Architectural state (public: the kernel model manipulates it the way
    /// real kernel entry assembly manipulates real registers).
    pub state: CpuState,
    pub(crate) cost: CostModel,
    pub(crate) features: HwFeatures,
    cycles: u64,
    pub(crate) stats: CpuStats,
    pending_irq: bool,
    /// Top-byte-ignore for user-half pointers (Linux default).
    pub tbi_user: bool,
    /// Direct-mapped decoded-instruction cache, keyed on physical address.
    icache: Vec<Option<IcacheEntry>>,
    icache_enabled: bool,
    /// Direct-mapped translated-block cache, keyed on the physical address
    /// of the block's first instruction (see [`crate::block`]). Boxed so a
    /// probe moves a pointer, not the entry.
    pub(crate) block_cache: Vec<Option<Box<BlockEntry>>>,
    block_engine: bool,
    /// Direct-mapped trace cache (tier 2; see [`crate::trace`]).
    pub(crate) trace_cache: Vec<Option<Box<TraceEntry>>>,
    pub(crate) trace_engine: bool,
    /// The chain recording in flight this call, if a hot block triggered
    /// promotion (finalized into a trace when the call returns).
    pub(crate) trace_recorder: Option<TraceRecorder>,
    /// The PAC functional unit (warm QARMA schedules per key).
    pub(crate) pac_unit: PacUnit,
    /// This core's index within its cluster (0 for a uniprocessor).
    id: usize,
    /// Pending inter-processor interrupts, delivered FIFO.
    ipi_queue: std::collections::VecDeque<IpiKind>,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new(HwFeatures::default())
    }
}

impl Cpu {
    /// Creates a core with the given features and the default cost model.
    pub fn new(features: HwFeatures) -> Self {
        Cpu {
            state: CpuState::new(),
            cost: CostModel::default(),
            features,
            cycles: 0,
            stats: CpuStats::default(),
            pending_irq: false,
            tbi_user: true,
            icache: vec![None; ICACHE_SIZE],
            icache_enabled: true,
            block_cache: vec![None; block::BLOCK_CACHE_SIZE],
            block_engine: true,
            trace_cache: vec![None; trace::TRACE_CACHE_SIZE],
            trace_engine: true,
            trace_recorder: None,
            pac_unit: PacUnit::new(),
            id: 0,
            ipi_queue: std::collections::VecDeque::new(),
        }
    }

    /// Creates core number `id` of a cluster (identical to [`Cpu::new`]
    /// except for the reported identity; cycle behaviour does not depend
    /// on the id).
    pub fn with_id(features: HwFeatures, id: usize) -> Self {
        let mut cpu = Cpu::new(features);
        cpu.id = id;
        cpu
    }

    /// This core's index within its cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Posts an inter-processor interrupt to this core. A non-empty IPI
    /// queue asserts its own interrupt line (distinct from the device IRQ
    /// line [`Cpu::raise_irq`] drives), so a running core observes the IPI
    /// at the next unmasked step boundary exactly like a device interrupt.
    pub fn post_ipi(&mut self, kind: IpiKind) {
        self.ipi_queue.push_back(kind);
        self.stats.ipis += 1;
    }

    /// Drains and returns the pending IPIs, oldest first (the host-side
    /// half of the IPI handler). Acknowledges the IPI line by emptying the
    /// queue; a device interrupt raised via [`Cpu::raise_irq`] stays
    /// pending.
    pub fn take_ipis(&mut self) -> Vec<IpiKind> {
        self.ipi_queue.drain(..).collect()
    }

    /// Number of IPIs queued but not yet taken.
    pub fn pending_ipis(&self) -> usize {
        self.ipi_queue.len()
    }

    /// Acknowledges every pending IPI without returning the payloads —
    /// the allocation-free form of [`Cpu::take_ipis`] for kernel entry
    /// paths that only need the IPI line dropped (the reschedule decision
    /// was already made by the caller and the shootdown invalidation
    /// happened at the initiator). Like [`Cpu::take_ipis`], a device
    /// interrupt raised via [`Cpu::raise_irq`] stays pending.
    pub fn ack_ipis(&mut self) {
        self.ipi_queue.clear();
    }

    /// Enables or disables this core's micro-architectural caches — the
    /// decoded-instruction cache and the PAC unit's warm key schedules.
    ///
    /// Architectural behaviour (register values, faults, cycle counts) is
    /// bit-identical either way; only wall-clock simulation speed changes.
    /// Pair with [`Memory::set_caching`] for a full A/B.
    pub fn set_caching(&mut self, enabled: bool) {
        self.icache_enabled = enabled;
        if !enabled {
            self.icache.fill(None);
        }
        self.pac_unit.set_caching(enabled);
    }

    /// Whether this core's caches are enabled.
    pub fn caching(&self) -> bool {
        self.icache_enabled
    }

    /// Enables or disables the basic-block translation engine (the
    /// [`Cpu::run_block`] fast path; see [`crate::block`]).
    ///
    /// Architectural behaviour — register values, faults, cycle counts,
    /// every [`CpuStats`] counter [`CpuStats::arch_eq`] covers — is
    /// bit-identical either way; only wall-clock simulation speed and the
    /// cache-observability counters change. Orthogonal to
    /// [`Cpu::set_caching`]: the engine keys off the memory system's
    /// generation counter and frame write versions, which are maintained
    /// whether or not the software TLB is on.
    pub fn set_block_engine(&mut self, enabled: bool) {
        self.block_engine = enabled;
        if !enabled {
            self.block_cache.fill(None);
            // The trace tier is nested inside the block path: without
            // tier 1 there is nothing to promote from or dispatch into.
            self.trace_cache.fill(None);
            self.trace_recorder = None;
        }
    }

    /// Whether the block translation engine is enabled.
    pub fn block_engine(&self) -> bool {
        self.block_engine
    }

    /// Enables or disables the trace tier of the translation engine (hot
    /// chains promoted into flattened, guard-checked traces; see
    /// [`crate::trace`]). The tier lives *inside* the block path, so it
    /// only runs while [`Cpu::set_block_engine`] is also on; with blocks
    /// off the knob is inert.
    ///
    /// Same A/B contract as the block engine: architectural behaviour —
    /// register values, faults, cycle counts, every counter
    /// [`CpuStats::arch_eq`] covers — is bit-identical either way; only
    /// wall-clock speed and the cache-observability counters change.
    pub fn set_trace_engine(&mut self, enabled: bool) {
        self.trace_engine = enabled;
        if !enabled {
            self.trace_cache.fill(None);
            self.trace_recorder = None;
        }
    }

    /// Whether the trace tier is enabled.
    pub fn trace_engine(&self) -> bool {
        self.trace_engine
    }

    /// Replaces the cycle-cost model (ablation experiments). Clears the
    /// block and trace caches: cached units carry cycle totals
    /// precomputed under the model they were decoded with.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
        self.block_cache.fill(None);
        self.trace_cache.fill(None);
        self.trace_recorder = None;
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Hardware features of this core.
    pub fn features(&self) -> HwFeatures {
        self.features
    }

    /// Total consumed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Execution counters.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Flags a pending interrupt, taken at the next step boundary if
    /// unmasked.
    pub fn raise_irq(&mut self) {
        self.pending_irq = true;
    }

    /// Performs `ERET` semantics without executing an instruction: restores
    /// PSTATE from `SPSR_EL1` and jumps to `ELR_EL1`.
    ///
    /// Host-side exception handlers (the kernel's upcall-based IRQ tick)
    /// use this to resume the interrupted context.
    pub fn return_from_exception(&mut self) {
        let spsr = self.state.sysreg(SysReg::SpsrEl1);
        let elr = self.state.sysreg(SysReg::ElrEl1);
        self.state.restore_spsr(spsr);
        self.state.pc = elr;
    }

    /// The translation context implied by current register state.
    pub fn translation_ctx(&self) -> TranslationCtx {
        TranslationCtx {
            ttbr0: TableId::from_raw(self.state.sysreg(SysReg::Ttbr0El1)),
            ttbr1: TableId::from_raw(self.state.sysreg(SysReg::Ttbr1El1)),
            el: self.state.el,
            tbi_user: self.tbi_user,
        }
    }

    fn charge(&mut self, insn: &Insn) {
        self.cycles += self.cost.cycles(insn);
    }

    pub(crate) fn take_exception(
        &mut self,
        ec: u64,
        iss: u64,
        elr: u64,
        far: Option<u64>,
        irq: bool,
    ) {
        self.stats.exceptions += 1;
        let from_lower = self.state.el == El::El0;
        self.state
            .set_sysreg(SysReg::SpsrEl1, self.state.spsr_bits());
        self.state.set_sysreg(SysReg::ElrEl1, elr);
        self.state
            .set_sysreg(SysReg::EsrEl1, (ec << 26) | (iss & 0x1FF_FFFF));
        if let Some(va) = far {
            self.state.set_sysreg(SysReg::FarEl1, va);
        }
        self.state.el = El::El1;
        self.state.irq_masked = true;
        let offset = match (irq, from_lower) {
            (false, false) => vector::SYNC_SAME_EL,
            (false, true) => vector::SYNC_LOWER_EL,
            (true, false) => vector::IRQ_SAME_EL,
            (true, true) => vector::IRQ_LOWER_EL,
        };
        self.state.pc = self.state.sysreg(SysReg::VbarEl1) + offset;
    }

    pub(crate) fn vectored_fault(
        &mut self,
        fault: MemFault,
        pc: u64,
        is_fetch: bool,
    ) -> Result<Step, CpuError> {
        let vbar = self.state.sysreg(SysReg::VbarEl1);
        if vbar == 0 {
            return Err(CpuError::UnhandledFault { fault, pc });
        }
        let from_lower = self.state.el == El::El0;
        let ec = match (is_fetch, from_lower) {
            (true, true) => ec::INSN_ABORT_LOWER,
            (true, false) => ec::INSN_ABORT_SAME,
            (false, true) => ec::DATA_ABORT_LOWER,
            (false, false) => ec::DATA_ABORT_SAME,
        };
        let far = match fault {
            MemFault::NonCanonical { va }
            | MemFault::Translation { va }
            | MemFault::Permission { va, .. }
            | MemFault::Stage2 { va, .. }
            | MemFault::FetchUnaligned { va } => Some(va),
            MemFault::Unmapped { pa } => Some(pa),
        };
        self.take_exception(ec, 0, pc, far, false);
        Ok(Step::FaultTaken { fault })
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] when the simulation cannot continue: an
    /// undefined instruction, or a fault with no vector base installed.
    pub fn step(&mut self, mem: &mut Memory) -> Result<Step, CpuError> {
        let result = self.step_inner(mem);
        // Mirror the memory system's TLB counters (see CpuStats::tlb_hits)
        // and the PAC unit's memo counters.
        self.stats.tlb_hits = mem.tlb_hits();
        self.stats.tlb_misses = mem.tlb_misses();
        self.stats.pac_memo_hits = self.pac_unit.memo_hits();
        self.stats.pac_memo_misses = self.pac_unit.memo_misses();
        result
    }

    /// Executes one translated basic block (or, with the engine disabled,
    /// exactly one [`Cpu::step`]).
    ///
    /// Returns the [`Step`] outcome of the *last* instruction the call
    /// retired, which is what run loops dispatch on: a fully straight-line
    /// block reports [`Step::Executed`]; a block ending in `RET` to the
    /// call sentinel reports [`Step::SentinelReturn`] on the *next* call,
    /// exactly like the step path. Architectural state, cycle counts and
    /// every [`CpuStats::arch_eq`] counter evolve bit-identically to
    /// driving the core with [`Cpu::step`]; only wall-clock speed and the
    /// cache-observability counters differ. See [`crate::block`] for the
    /// block shape and invalidation rules.
    ///
    /// # Errors
    ///
    /// Exactly like [`Cpu::step`]: an undefined instruction, or a fault
    /// with no vector base installed.
    pub fn run_block(&mut self, mem: &mut Memory) -> Result<Step, CpuError> {
        if !self.block_engine {
            return self.step(mem);
        }
        let result = self.run_block_inner(mem);
        if let Some(rec) = self.trace_recorder.take() {
            // A hot block triggered promotion this call: build the trace
            // from the recorded chain now that the call is over (the
            // recording sees final PCs; the build re-decodes from the
            // current bytes and stamps the current generation/versions).
            self.finalize_trace(mem, rec);
        }
        // One mirror per block instead of one per instruction — part of
        // the batched-stats contract.
        self.stats.tlb_hits = mem.tlb_hits();
        self.stats.tlb_misses = mem.tlb_misses();
        self.stats.pac_memo_hits = self.pac_unit.memo_hits();
        self.stats.pac_memo_misses = self.pac_unit.memo_misses();
        result
    }

    fn run_block_inner(&mut self, mem: &mut Memory) -> Result<Step, CpuError> {
        if let Some(step) = self.boundary_check() {
            return Ok(step);
        }
        // The translation context cannot change inside this call: the
        // instructions that move it (MSR to a TTBR, ERET, exception entry)
        // either fall back to the step path or end the call.
        let ctx = self.translation_ctx();
        let mut pc = self.state.pc;
        // The hoisted permission walk: one execute-access translation at
        // block entry covers every instruction of every block executed on
        // this page this call, and runs on every call, so revoking execute
        // rights still faults on the very next block entry.
        let mut pa = match mem.fetch_loc(&ctx, pc) {
            Ok(pa) => pa,
            Err(fault) => return self.vectored_fault(fault, pc, true),
        };
        let generation = mem.translation_generation();

        // Cycle / retired-instruction accumulators, folded into the
        // architectural counters exactly once per call (every exit path
        // below flushes them first).
        let mut acc_cycles = 0u64;
        let mut acc_insns = 0u64;
        let mut outcome = Ok(Step::Executed);

        // Same-page chaining: after a block's terminator lands on the same
        // VA page, the entry walk still covers the new target, so the next
        // block starts without another walk. MAX_CHAIN bounds the blocks
        // per call so a spin loop cannot starve the caller's run budget.
        //
        // The (frame, write version) pair is tracked across the chain: it
        // is re-read only when the chain changes frames or an executed
        // store may have moved it, so a hot loop spinning inside one page
        // validates its frame version once per call, not once per block.
        let mut frame = Frame::containing(pa);
        let mut version = mem.phys().frame_version(frame);
        'chain: for _ in 0..block::MAX_CHAIN {
            if self.trace_engine && acc_insns >= trace::TRACE_CALL_INSNS {
                // An internally-looping trace can retire up to the whole
                // per-call bound by itself; stop chaining once the call
                // has retired it, so run-loop budgets keep their
                // documented overshoot bound. Inert for pure tier-1
                // chains (MAX_CHAIN full blocks is exactly this bound).
                break;
            }
            if Frame::containing(pa) != frame {
                frame = Frame::containing(pa);
                version = mem.phys().frame_version(frame);
            }

            // Tier 2 first: a validated trace at this entry executes
            // whole stitched block sequences (and loops internally)
            // without touching the block cache again.
            if self.trace_engine {
                match self.try_trace(
                    mem,
                    &ctx,
                    pc,
                    pa,
                    generation,
                    &mut acc_cycles,
                    &mut acc_insns,
                ) {
                    TraceOutcome::NotEntered => {}
                    TraceOutcome::Continued => {
                        // The trace left via a guard with the PC
                        // materialized: chain on exactly like a block
                        // exit (same-page targets reuse the open walk,
                        // cross-page targets take a fresh one).
                        let next = self.state.pc;
                        if next % 4 != 0 || next == CALL_SENTINEL {
                            break;
                        }
                        if next ^ pc < PAGE_SIZE {
                            pa = (pa & !(PAGE_SIZE - 1)) + next % PAGE_SIZE;
                        } else {
                            match mem.fetch_loc(&ctx, next) {
                                Ok(npa) => pa = npa,
                                Err(fault) => {
                                    self.cycles += acc_cycles;
                                    self.stats.instructions += acc_insns;
                                    return self.vectored_fault(fault, next, true);
                                }
                            }
                        }
                        pc = next;
                        // Unconditional re-read: a store *inside* the
                        // trace may have bumped the current frame's
                        // version without changing frames, and a stale
                        // cached `version` here could revalidate a stale
                        // block.
                        frame = Frame::containing(pa);
                        version = mem.phys().frame_version(frame);
                        self.stats.chain_follows += 1;
                        continue 'chain;
                    }
                    TraceOutcome::Ended(res) => {
                        self.cycles += acc_cycles;
                        self.stats.instructions += acc_insns;
                        return res;
                    }
                }
            }
            let slot = block::block_slot(pa);

            // Probe, taking the entry out of the slot so the executor can
            // borrow the CPU mutably; it is put back before moving on.
            let mut entry = match self.block_cache[slot].take() {
                Some(mut e) if e.pa == pa && e.version == version => {
                    e.hot = e.hot.saturating_add(1);
                    if e.generation != generation {
                        // The translation configuration moved since decode
                        // (map/unmap/set_attr/stage-2 change somewhere in
                        // the system) but this block's bytes did not. The
                        // entry walk above just revalidated the current
                        // PC→PA mapping and its execute permission under
                        // the *new* configuration, so the block is sound:
                        // re-stamp it instead of re-decoding. Without this,
                        // a module-churn or fork-storm tenant (one
                        // generation bump per op) would flush every block
                        // in the machine on every op.
                        e.generation = generation;
                    }
                    self.stats.block_hits += 1;
                    e
                }
                stale => {
                    if matches!(&stale, Some(e) if e.pa == pa) {
                        // Same block, changed bytes (self-modifying code,
                        // module reload into the frame, direct-to-physical
                        // attacker write): discard and re-decode.
                        self.stats.block_invalidations += 1;
                    }
                    self.stats.block_misses += 1;
                    block::decode_block(
                        mem.phys(),
                        pa,
                        generation,
                        version,
                        self.features.pauth,
                        &self.cost,
                    )
                }
            };

            if self.trace_engine
                && entry.hot >= trace::HOT_THRESHOLD
                && !entry.no_trace
                && self.trace_recorder.is_none()
                && (!entry.body.is_empty() || entry.terminator.is_some())
            {
                // This block is hot and no trace covers its entry (a
                // fresh trace at this pa/pc would have run above): record
                // the chain it heads for the rest of this call. Resetting
                // the counter spaces out rebuilds when the installed
                // trace keeps getting displaced (slot aliasing).
                entry.hot = 0;
                self.trace_recorder = Some(TraceRecorder::new());
            }

            if entry.body.is_empty() && entry.terminator.is_none() {
                // The instruction at the entry needs one-step treatment.
                // Flush the accumulators first: the step semantics may
                // read the live cycle counter (`MRS CNTVCT_EL0`).
                let fallback = entry.fallback;
                self.block_cache[slot] = Some(entry);
                self.cycles += acc_cycles;
                self.stats.instructions += acc_insns;
                return match fallback {
                    // Cached decode: the entry walk already validated the
                    // fetch, so execute directly (SVC/BRK/ERET/MSR/MRS,
                    // pre-v8.3 PAuth forms).
                    Some(insn) => self.exec_decoded(mem, insn, pc, &ctx),
                    // Undecodable word: the step path raises the
                    // architectural error with the raw word.
                    None => self.fetch_exec(mem, pc),
                };
            }

            let body_len = entry.body.len();
            let mut executed = body_len;
            let mut store_abort = false;
            let mut abort: Option<Result<Step, CpuError>> = None;
            for (i, insn) in entry.body.iter().enumerate() {
                let insn_pc = self.state.pc;
                match self.execute(mem, *insn, insn_pc, &ctx) {
                    Ok(Step::Executed) => {
                        if block::is_store(insn) {
                            let now = mem.phys().frame_version(frame);
                            if now != version {
                                // The store landed in the block's own code
                                // frame: the remaining decoded instructions
                                // may be stale. Stop the block here; the
                                // chain re-probes at the next PC with the
                                // fresh version, re-decoding the modified
                                // bytes exactly like the step path's next
                                // fetch.
                                version = now;
                                executed = i + 1;
                                store_abort = true;
                                break;
                            }
                        }
                    }
                    other => {
                        // A data abort vectored (or was unhandled): the
                        // call ends with the step outcome of the faulting
                        // instruction (which the step path charges too).
                        executed = i + 1;
                        abort = Some(other);
                        break;
                    }
                }
            }
            if executed == body_len && !store_abort && abort.is_none() {
                // The common case: the whole block retired. Charge the
                // precomputed total (body + terminator) in one addition.
                if let Some(term) = entry.terminator {
                    let insn_pc = self.state.pc;
                    match self.execute(mem, term, insn_pc, &ctx) {
                        Ok(Step::Executed) => {}
                        other => abort = Some(other),
                    }
                    acc_insns += 1;
                }
                acc_cycles += entry.cycles;
                acc_insns += body_len as u64;
            } else {
                // Rare partial execution: charge exactly the prefix the
                // step path would have charged.
                acc_cycles += entry.body[..executed]
                    .iter()
                    .map(|i| self.cost.cycles(i))
                    .sum::<u64>();
                acc_insns += executed as u64;
            }
            let has_term = entry.terminator.is_some();
            self.block_cache[slot] = Some(entry);
            if let Some(rec) = self.trace_recorder.as_mut() {
                if abort.is_none() && !store_abort {
                    // Cleanly-retired block: extend the recording with
                    // the chain edge just observed.
                    rec.record(pa, pc, has_term, self.state.pc);
                } else {
                    // Fault, upcall or self-modifying store — events a
                    // trace cannot contain. Keep the prefix: a chain
                    // that *ends* in SVC/ERET every time (kernel entry/
                    // exit) still deserves its straight-line trace.
                    rec.finish();
                }
            }
            if let Some(out) = abort {
                outcome = out;
                break 'chain;
            }

            // Chain on. A same-page target is still covered by the walk
            // that opened this page; a cross-page target takes a fresh
            // permission walk right here (the step path walks per
            // *instruction*, so a walk per page crossing preserves every
            // fault and revocation point). Unaligned targets and the call
            // sentinel end the call; the next call raises the fault or
            // reports the return.
            let next = self.state.pc;
            if next % 4 != 0 || next == CALL_SENTINEL {
                break;
            }
            if next ^ pc < PAGE_SIZE {
                pa = (pa & !(PAGE_SIZE - 1)) + next % PAGE_SIZE;
            } else {
                match mem.fetch_loc(&ctx, next) {
                    Ok(npa) => pa = npa,
                    Err(fault) => {
                        self.cycles += acc_cycles;
                        self.stats.instructions += acc_insns;
                        return self.vectored_fault(fault, next, true);
                    }
                }
            }
            pc = next;
            self.stats.chain_follows += 1;
        }
        self.cycles += acc_cycles;
        self.stats.instructions += acc_insns;
        outcome
    }

    /// Fetches and decodes the instruction at `pc`, through the decoded-
    /// instruction cache when enabled.
    ///
    /// The permission walk (`fetch_loc`) runs on **every** step — a TLB hit
    /// makes it cheap, but revoking execute rights (stage-1 `set_attr`,
    /// stage-2 sealing) faults on the very next fetch even for a cached
    /// instruction. The decoded entry is keyed on the physical address and
    /// validated against the frame's write version, so any store into the
    /// page — translated or direct-to-physical — forces a fresh decode.
    fn fetch_decode(&mut self, mem: &Memory, ctx: &TranslationCtx, pc: u64) -> FetchResult {
        let pa = match mem.fetch_loc(ctx, pc) {
            Ok(pa) => pa,
            Err(fault) => return FetchResult::Fault(fault),
        };
        if !self.icache_enabled {
            let word = match mem.phys().read_u32(pa) {
                Some(word) => word,
                None => return FetchResult::Fault(MemFault::Unmapped { pa }),
            };
            return match decode(word) {
                Some(insn) => FetchResult::Insn(insn),
                None => FetchResult::Undefined(word),
            };
        }
        let version = mem.phys().frame_version(Frame::containing(pa));
        let slot = icache_slot(pa);
        if let Some(entry) = self.icache[slot] {
            if entry.pa == pa && entry.version == version {
                self.stats.icache_hits += 1;
                return FetchResult::Insn(entry.insn);
            }
        }
        self.stats.icache_misses += 1;
        let word = match mem.phys().read_u32(pa) {
            Some(word) => word,
            None => return FetchResult::Fault(MemFault::Unmapped { pa }),
        };
        match decode(word) {
            Some(insn) => {
                self.icache[slot] = Some(IcacheEntry { pa, version, insn });
                FetchResult::Insn(insn)
            }
            None => FetchResult::Undefined(word),
        }
    }

    /// The step-boundary preamble shared by [`Cpu::step`] and
    /// [`Cpu::run_block`]: the sentinel check and the interrupt sample.
    /// Returns `Some` when the boundary itself produced the step outcome.
    fn boundary_check(&mut self) -> Option<Step> {
        if self.state.pc == CALL_SENTINEL {
            return Some(Step::SentinelReturn);
        }
        if (self.pending_irq || !self.ipi_queue.is_empty()) && !self.state.irq_masked {
            // Taking the exception clears the device line; the IPI line
            // stays asserted until the handler drains the queue, but the
            // vectored handler runs with IRQs masked, so there is no storm.
            self.pending_irq = false;
            let pc = self.state.pc;
            self.take_exception(0, 0, pc, None, true);
            return Some(Step::IrqTaken);
        }
        None
    }

    fn step_inner(&mut self, mem: &mut Memory) -> Result<Step, CpuError> {
        if let Some(step) = self.boundary_check() {
            return Ok(step);
        }
        let pc = self.state.pc;
        self.fetch_exec(mem, pc)
    }

    /// The per-instruction path after the boundary checks: fetch, decode,
    /// feature-gate, charge, execute. Used by [`Cpu::step`] for every
    /// instruction and by [`Cpu::run_block`] for the instructions a block
    /// cannot contain (`SVC`, `BRK`, `ERET`, `MSR`/`MRS`, undefined
    /// words, pre-v8.3 PAuth forms).
    fn fetch_exec(&mut self, mem: &mut Memory, pc: u64) -> Result<Step, CpuError> {
        let ctx = self.translation_ctx();
        let insn = match self.fetch_decode(mem, &ctx, pc) {
            FetchResult::Insn(insn) => insn,
            FetchResult::Fault(fault) => return self.vectored_fault(fault, pc, true),
            FetchResult::Undefined(word) => return Err(CpuError::UndefinedInsn { word, pc }),
        };
        self.exec_decoded(mem, insn, pc, &ctx)
    }

    /// Single-instruction step semantics for an already-decoded `insn` at
    /// `pc`: the §5.5 feature gate, the cycle charge, and the execute.
    /// Shared by the step path (after its fetch) and the block engine's
    /// cached-fallback path (which already validated the fetch at block
    /// entry).
    fn exec_decoded(
        &mut self,
        mem: &mut Memory,
        insn: Insn,
        pc: u64,
        ctx: &TranslationCtx,
    ) -> Result<Step, CpuError> {
        // Feature gating (§5.5): without PAuth, hint-space forms are NOPs
        // and the 8.3-only encodings are UNDEFINED.
        if !self.features.pauth && insn.is_pauth() {
            match insn {
                Insn::PacSp { .. }
                | Insn::AutSp { .. }
                | Insn::Pac1716 { .. }
                | Insn::Aut1716 { .. } => {
                    self.cycles += self.cost.nop;
                    self.stats.instructions += 1;
                    self.state.pc = pc + 4;
                    return Ok(Step::Executed);
                }
                _ => {
                    return Err(CpuError::UndefinedInsn {
                        word: camo_isa::encode(&insn),
                        pc,
                    })
                }
            }
        }

        self.charge(&insn);
        self.stats.instructions += 1;
        self.execute(mem, insn, pc, ctx)
    }

    pub(crate) fn key_for(&self, key: PacKey) -> camo_qarma::QarmaKey {
        self.state.pauth_key(key.to_pauth_key())
    }

    fn do_pac(&mut self, key: PacKey, rd: Reg, modifier: u64) {
        if !self.state.key_enabled(key.to_pauth_key()) {
            return; // architecturally a NOP when the key is disabled
        }
        let value = self.state.read(rd);
        let qkey = self.key_for(key);
        let signed = self.pac_unit.add_pac(value, modifier, qkey, self.tbi_user);
        self.state.write(rd, signed);
        self.stats.pac_signs += 1;
    }

    fn do_aut(&mut self, key: PacKey, rd: Reg, modifier: u64) -> u64 {
        let value = self.state.read(rd);
        if !self.state.key_enabled(key.to_pauth_key()) {
            return value;
        }
        let qkey = self.key_for(key);
        let out = match self
            .pac_unit
            .auth_pac(value, modifier, qkey, class_of(key), self.tbi_user)
        {
            Ok(stripped) => {
                self.stats.pac_auth_ok += 1;
                stripped
            }
            Err(corrupted) => {
                self.stats.pac_auth_fail += 1;
                match class_of(key) {
                    KeyClass::Instruction => self.stats.pac_auth_fail_instr += 1,
                    KeyClass::Data => self.stats.pac_auth_fail_data += 1,
                }
                corrupted
            }
        };
        self.state.write(rd, out);
        out
    }

    pub(crate) fn addr_single(&mut self, rn: Reg, mode: AddrMode) -> u64 {
        let base = self.state.read(rn);
        match mode {
            AddrMode::Unsigned(imm) => base.wrapping_add(u64::from(imm)),
            AddrMode::Post(imm) => {
                self.state.write(rn, base.wrapping_add(imm as i64 as u64));
                base
            }
            AddrMode::Pre(imm) => {
                let addr = base.wrapping_add(imm as i64 as u64);
                self.state.write(rn, addr);
                addr
            }
        }
    }

    pub(crate) fn addr_pair(&mut self, rn: Reg, mode: PairMode) -> u64 {
        let base = self.state.read(rn);
        match mode {
            PairMode::SignedOffset(imm) => base.wrapping_add(imm as i64 as u64),
            PairMode::Post(imm) => {
                self.state.write(rn, base.wrapping_add(imm as i64 as u64));
                base
            }
            PairMode::Pre(imm) => {
                let addr = base.wrapping_add(imm as i64 as u64);
                self.state.write(rn, addr);
                addr
            }
        }
    }

    /// Executes one decoded instruction. `ctx` is the translation context
    /// the instruction was fetched under (nothing can change it between
    /// fetch and execute within one step).
    pub(crate) fn execute(
        &mut self,
        mem: &mut Memory,
        insn: Insn,
        pc: u64,
        ctx: &TranslationCtx,
    ) -> Result<Step, CpuError> {
        let mut next_pc = pc + 4;

        macro_rules! mem_try {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(fault) => return self.vectored_fault(fault, pc, false),
                }
            };
        }

        match insn {
            Insn::Movz { rd, imm16, shift } => {
                self.state.write(rd, u64::from(imm16) << (16 * shift));
            }
            Insn::Movn { rd, imm16, shift } => {
                self.state.write(rd, !(u64::from(imm16) << (16 * shift)));
            }
            Insn::Movk { rd, imm16, shift } => {
                let old = self.state.read(rd);
                let mask = 0xFFFFu64 << (16 * shift);
                self.state
                    .write(rd, (old & !mask) | (u64::from(imm16) << (16 * shift)));
            }
            Insn::AddImm {
                rd,
                rn,
                imm12,
                shifted,
            } => {
                let imm = if shifted {
                    u64::from(imm12) << 12
                } else {
                    u64::from(imm12)
                };
                let v = self.state.read(rn).wrapping_add(imm);
                self.state.write(rd, v);
            }
            Insn::SubImm {
                rd,
                rn,
                imm12,
                shifted,
            } => {
                let imm = if shifted {
                    u64::from(imm12) << 12
                } else {
                    u64::from(imm12)
                };
                let v = self.state.read(rn).wrapping_sub(imm);
                self.state.write(rd, v);
            }
            Insn::AddReg { rd, rn, rm } => {
                let v = self.state.read(rn).wrapping_add(self.state.read(rm));
                self.state.write(rd, v);
            }
            Insn::SubReg { rd, rn, rm } => {
                let v = self.state.read(rn).wrapping_sub(self.state.read(rm));
                self.state.write(rd, v);
            }
            Insn::AndReg { rd, rn, rm } => {
                let v = self.state.read(rn) & self.state.read(rm);
                self.state.write(rd, v);
            }
            Insn::OrrReg { rd, rn, rm } => {
                let v = self.state.read(rn) | self.state.read(rm);
                self.state.write(rd, v);
            }
            Insn::EorReg { rd, rn, rm } => {
                let v = self.state.read(rn) ^ self.state.read(rm);
                self.state.write(rd, v);
            }
            Insn::Bfm { rd, rn, immr, imms } => {
                // BFI/BFXIL semantics (64-bit BFM with N=1).
                let src = self.state.read(rn);
                let dst = self.state.read(rd);
                let r = u32::from(immr);
                let s = u32::from(imms);
                let result = if s >= r {
                    // BFXIL: extract s-r+1 bits at position r into low bits.
                    let width = s - r + 1;
                    let mask = mask_lo(width);
                    let field = (src >> r) & mask;
                    (dst & !mask) | field
                } else {
                    // BFI: insert s+1 low bits of src at position 64-r.
                    let width = s + 1;
                    let lsb = 64 - r;
                    let mask = mask_lo(width) << lsb;
                    (dst & !mask) | ((src << lsb) & mask)
                };
                self.state.write(rd, result);
            }
            Insn::Ubfm { rd, rn, immr, imms } => {
                let src = self.state.read(rn);
                let r = u32::from(immr);
                let s = u32::from(imms);
                let result = if s >= r {
                    // LSR/UBFX: bits s:r moved to the bottom.
                    (src >> r) & mask_lo(s - r + 1)
                } else {
                    // LSL/UBFIZ: s+1 low bits shifted up to 64-r.
                    (src & mask_lo(s + 1)) << (64 - r)
                };
                self.state.write(rd, result);
            }
            Insn::Adr { rd, offset } => {
                self.state.write(rd, pc.wrapping_add(offset as i64 as u64));
            }
            Insn::Ldr { rt, rn, mode } => {
                let addr = self.addr_single(rn, mode);
                let v = mem_try!(mem.read_u64(ctx, addr));
                self.state.write(rt, v);
            }
            Insn::Str { rt, rn, mode } => {
                let addr = self.addr_single(rn, mode);
                let v = self.state.read(rt);
                mem_try!(mem.write_u64(ctx, addr, v));
            }
            Insn::Ldp { rt, rt2, rn, mode } => {
                let addr = self.addr_pair(rn, mode);
                let v1 = mem_try!(mem.read_u64(ctx, addr));
                let v2 = mem_try!(mem.read_u64(ctx, addr + 8));
                self.state.write(rt, v1);
                self.state.write(rt2, v2);
            }
            Insn::Stp { rt, rt2, rn, mode } => {
                let addr = self.addr_pair(rn, mode);
                let v1 = self.state.read(rt);
                let v2 = self.state.read(rt2);
                mem_try!(mem.write_u64(ctx, addr, v1));
                mem_try!(mem.write_u64(ctx, addr + 8, v2));
            }
            Insn::B { offset } => next_pc = pc.wrapping_add(offset as i64 as u64),
            Insn::Bl { offset } => {
                self.state.write(Reg::LR, pc + 4);
                next_pc = pc.wrapping_add(offset as i64 as u64);
            }
            Insn::Br { rn } => next_pc = self.state.read(rn),
            Insn::Blr { rn } => {
                next_pc = self.state.read(rn);
                self.state.write(Reg::LR, pc + 4);
            }
            Insn::Ret { rn } => next_pc = self.state.read(rn),
            Insn::Cbz { rt, offset } => {
                if self.state.read(rt) == 0 {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                }
            }
            Insn::Cbnz { rt, offset } => {
                if self.state.read(rt) != 0 {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                }
            }
            Insn::Svc { imm } => {
                if self.state.sysreg(SysReg::VbarEl1) != 0 {
                    self.take_exception(ec::SVC64, u64::from(imm), pc + 4, None, false);
                } else {
                    // Harness mode: surface the event without vectoring.
                    self.state.pc = pc + 4;
                }
                return Ok(Step::SvcTaken { imm });
            }
            Insn::Brk { imm } => {
                // Kernel-upcall boundary: return to the harness, PC past the
                // BRK so execution resumes seamlessly.
                self.state.pc = pc + 4;
                return Ok(Step::BrkTrap { imm });
            }
            Insn::Eret => {
                let spsr = self.state.sysreg(SysReg::SpsrEl1);
                let elr = self.state.sysreg(SysReg::ElrEl1);
                self.state.restore_spsr(spsr);
                self.state.pc = elr;
                return Ok(Step::EretTo {
                    el: self.state.el,
                    pc: elr,
                });
            }
            Insn::Msr { sr, rt } => {
                if self.state.el != El::El1 && sr != SysReg::CntvctEl0 {
                    self.take_exception(ec::TRAPPED_MSR, 0, pc, None, false);
                    return Ok(Step::FaultTaken {
                        fault: MemFault::Permission {
                            va: pc,
                            access: camo_mem::AccessType::Write,
                            el: El::El0,
                        },
                    });
                }
                if sr.is_pauth_key() {
                    self.stats.key_writes += 1;
                }
                let v = self.state.read(rt);
                self.state.set_sysreg(sr, v);
            }
            Insn::Mrs { rt, sr } => {
                if self.state.el != El::El1 && sr != SysReg::CntvctEl0 {
                    self.take_exception(ec::TRAPPED_MSR, 0, pc, None, false);
                    return Ok(Step::FaultTaken {
                        fault: MemFault::Permission {
                            va: pc,
                            access: camo_mem::AccessType::Read,
                            el: El::El0,
                        },
                    });
                }
                let v = if sr == SysReg::CntvctEl0 {
                    self.cycles
                } else {
                    self.state.sysreg(sr)
                };
                self.state.write(rt, v);
            }
            Insn::Pac { key, rd, rn } => {
                let modifier = self.state.read(rn);
                self.do_pac(key, rd, modifier);
            }
            Insn::Aut { key, rd, rn } => {
                let modifier = self.state.read(rn);
                self.do_aut(key, rd, modifier);
            }
            Insn::PacSp { key } => {
                let modifier = self.state.sp();
                self.do_pac(to_pac_key(key), Reg::LR, modifier);
            }
            Insn::AutSp { key } => {
                let modifier = self.state.sp();
                self.do_aut(to_pac_key(key), Reg::LR, modifier);
            }
            Insn::Pac1716 { key } => {
                let modifier = self.state.read(Reg::IP0);
                self.do_pac(to_pac_key(key), Reg::IP1, modifier);
            }
            Insn::Aut1716 { key } => {
                let modifier = self.state.read(Reg::IP0);
                self.do_aut(to_pac_key(key), Reg::IP1, modifier);
            }
            Insn::Xpaci { rd } | Insn::Xpacd { rd } => {
                let v = strip_pac(self.state.read(rd), self.tbi_user);
                self.state.write(rd, v);
            }
            Insn::Pacga { rd, rn, rm } => {
                let key = self.state.pauth_key(camo_isa::PauthKey::GA);
                let mac = self
                    .pac_unit
                    .mac(self.state.read(rn), self.state.read(rm), key);
                self.state.write(rd, u64::from(mac) << 32);
                self.stats.pac_signs += 1;
            }
            Insn::Reta { key } => {
                let modifier = self.state.sp();
                next_pc = self.do_aut(to_pac_key(key), Reg::LR, modifier);
            }
            Insn::Blra { key, rn, rm } => {
                let modifier = self.state.read(rm);
                next_pc = self.do_aut(to_pac_key(key), rn, modifier);
                self.state.write(Reg::LR, pc + 4);
            }
            Insn::Bra { key, rn, rm } => {
                let modifier = self.state.read(rm);
                next_pc = self.do_aut(to_pac_key(key), rn, modifier);
            }
            Insn::Nop => {}
        }

        self.state.pc = next_pc;
        Ok(Step::Executed)
    }

    /// Calls a function at `fn_va` with up to eight `args`, running until it
    /// returns (LR sentinel reached).
    ///
    /// Drives the core through [`Cpu::run_block`], so an enabled block
    /// engine (the default) accelerates the call; `max_steps` bounds
    /// engine invocations, so it remains an upper bound on retired
    /// instructions only with the engine disabled.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`]; returns [`CpuError::TimedOut`] after
    /// `max_steps`.
    pub fn call(
        &mut self,
        mem: &mut Memory,
        fn_va: u64,
        args: &[u64],
        max_steps: u64,
    ) -> Result<CallResult, CpuError> {
        assert!(args.len() <= 8, "at most eight register arguments");
        for (i, &arg) in args.iter().enumerate() {
            self.state.gprs[i] = arg;
        }
        self.state.write(Reg::LR, CALL_SENTINEL);
        self.state.pc = fn_va;
        let start_cycles = self.cycles;
        let start_insns = self.stats.instructions;
        for _ in 0..max_steps {
            match self.run_block(mem)? {
                Step::SentinelReturn => {
                    return Ok(CallResult {
                        x0: self.state.gprs[0],
                        cycles: self.cycles - start_cycles,
                        instructions: self.stats.instructions - start_insns,
                    })
                }
                _ => continue,
            }
        }
        Err(CpuError::TimedOut { steps: max_steps })
    }
}

pub(crate) fn to_pac_key(key: InsnKey) -> PacKey {
    match key {
        InsnKey::A => PacKey::IA,
        InsnKey::B => PacKey::IB,
    }
}

pub(crate) fn class_of(key: PacKey) -> KeyClass {
    match key {
        PacKey::IA | PacKey::IB => KeyClass::Instruction,
        PacKey::DA | PacKey::DB => KeyClass::Data,
    }
}

pub(crate) fn mask_lo(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_isa::{encode, Assembler};
    use camo_mem::{S1Attr, KERNEL_BASE};

    /// Loads `insns` at KERNEL_BASE with a data page above it, returns
    /// (cpu, mem) ready to run at EL1.
    fn machine(insns: &[Insn]) -> (Cpu, Memory) {
        let mut mem = Memory::new();
        let table = mem.new_table();
        let text = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        mem.map_new(table, KERNEL_BASE + 0x1000, S1Attr::kernel_data());
        for (i, insn) in insns.iter().enumerate() {
            mem.phys_mut()
                .write_u32(text.base() + 4 * i as u64, encode(insn))
                .unwrap();
        }
        let mut cpu = Cpu::default();
        cpu.state.pc = KERNEL_BASE;
        cpu.state
            .set_sysreg(SysReg::Ttbr0El1, TableId::from_raw(table.raw()).raw());
        cpu.state.set_sysreg(SysReg::Ttbr1El1, table.raw());
        cpu.state.sp_el1 = KERNEL_BASE + 0x2000; // top of the data page
        (cpu, mem)
    }

    fn run(cpu: &mut Cpu, mem: &mut Memory, steps: usize) {
        for _ in 0..steps {
            cpu.step(mem).expect("step failed");
        }
    }

    #[test]
    fn movz_movk_builds_constant() {
        let (mut cpu, mut mem) = machine(&[
            Insn::Movz {
                rd: Reg::x(0),
                imm16: 0x1111,
                shift: 0,
            },
            Insn::Movk {
                rd: Reg::x(0),
                imm16: 0x2222,
                shift: 1,
            },
            Insn::Movk {
                rd: Reg::x(0),
                imm16: 0x3333,
                shift: 2,
            },
            Insn::Movk {
                rd: Reg::x(0),
                imm16: 0x4444,
                shift: 3,
            },
        ]);
        run(&mut cpu, &mut mem, 4);
        assert_eq!(cpu.state.gprs[0], 0x4444_3333_2222_1111);
    }

    #[test]
    fn movewide_costs_one_cycle_each() {
        let (mut cpu, mut mem) = machine(&[
            Insn::Movz {
                rd: Reg::x(0),
                imm16: 1,
                shift: 0,
            },
            Insn::Movk {
                rd: Reg::x(0),
                imm16: 2,
                shift: 1,
            },
            Insn::Movk {
                rd: Reg::x(0),
                imm16: 3,
                shift: 2,
            },
            Insn::Movk {
                rd: Reg::x(0),
                imm16: 4,
                shift: 3,
            },
        ]);
        run(&mut cpu, &mut mem, 4);
        assert_eq!(cpu.cycles(), 4);
    }

    #[test]
    fn bfi_merges_sp_into_modifier() {
        // The Listing 3 modifier: x16 = fn address, x17 = SP, bfi x16, x17, #32, #32.
        let (mut cpu, mut mem) = machine(&[Insn::bfi(Reg::IP0, Reg::IP1, 32, 32)]);
        cpu.state.gprs[16] = 0xffff_0000_1234_5678;
        cpu.state.gprs[17] = 0xffff_8000_9abc_def0;
        run(&mut cpu, &mut mem, 1);
        assert_eq!(cpu.state.gprs[16], 0x9abc_def0_1234_5678);
    }

    #[test]
    fn ubfm_lsl_lsr() {
        let (mut cpu, mut mem) = machine(&[
            Insn::lsl(Reg::x(1), Reg::x(0), 16),
            Insn::lsr(Reg::x(2), Reg::x(0), 48),
        ]);
        cpu.state.gprs[0] = 0xABCD_0000_0000_4321;
        run(&mut cpu, &mut mem, 2);
        assert_eq!(cpu.state.gprs[1], 0x0000_0000_4321_0000);
        assert_eq!(cpu.state.gprs[2], 0xABCD);
    }

    #[test]
    fn frame_record_push_pop() {
        let (mut cpu, mut mem) = machine(&[
            Insn::Stp {
                rt: Reg::FP,
                rt2: Reg::LR,
                rn: Reg::Sp,
                mode: PairMode::Pre(-16),
            },
            Insn::Ldp {
                rt: Reg::x(0),
                rt2: Reg::x(1),
                rn: Reg::Sp,
                mode: PairMode::Post(16),
            },
        ]);
        let sp0 = cpu.state.sp();
        cpu.state.gprs[29] = 0x2900;
        cpu.state.gprs[30] = 0x3000;
        run(&mut cpu, &mut mem, 2);
        assert_eq!(cpu.state.gprs[0], 0x2900);
        assert_eq!(cpu.state.gprs[1], 0x3000);
        assert_eq!(cpu.state.sp(), sp0, "SP restored after pop");
    }

    #[test]
    fn pac_aut_roundtrip_on_core() {
        let (mut cpu, mut mem) = machine(&[
            Insn::Pac {
                key: PacKey::IB,
                rd: Reg::x(0),
                rn: Reg::x(1),
            },
            Insn::Aut {
                key: PacKey::IB,
                rd: Reg::x(0),
                rn: Reg::x(1),
            },
        ]);
        cpu.state
            .set_pauth_key(camo_isa::PauthKey::IB, camo_qarma::QarmaKey::new(7, 9));
        let ptr = KERNEL_BASE + 0x123;
        cpu.state.gprs[0] = ptr;
        cpu.state.gprs[1] = 0x42;
        run(&mut cpu, &mut mem, 1);
        assert_ne!(cpu.state.gprs[0], ptr, "pointer is signed");
        run(&mut cpu, &mut mem, 1);
        assert_eq!(cpu.state.gprs[0], ptr, "authentication strips the PAC");
        assert_eq!(cpu.stats().pac_signs, 1);
        assert_eq!(cpu.stats().pac_auth_ok, 1);
    }

    #[test]
    fn aut_failure_corrupts_pointer() {
        let (mut cpu, mut mem) = machine(&[Insn::Aut {
            key: PacKey::DB,
            rd: Reg::x(0),
            rn: Reg::x(1),
        }]);
        cpu.state
            .set_pauth_key(camo_isa::PauthKey::DB, camo_qarma::QarmaKey::new(7, 9));
        cpu.state.gprs[0] = KERNEL_BASE + 0x123; // unsigned, forged
        cpu.state.gprs[1] = 0x42;
        run(&mut cpu, &mut mem, 1);
        assert_eq!(cpu.stats().pac_auth_fail, 1);
        assert!(crate::pac::looks_like_pac_failure(cpu.state.gprs[0], true));
    }

    #[test]
    fn disabled_key_makes_pac_a_nop() {
        use camo_isa::sysreg::sctlr;
        let (mut cpu, mut mem) = machine(&[Insn::Pac {
            key: PacKey::IB,
            rd: Reg::x(0),
            rn: Reg::x(1),
        }]);
        cpu.state
            .set_sysreg(SysReg::SctlrEl1, sctlr::EN_ALL & !sctlr::EN_IB);
        cpu.state.gprs[0] = KERNEL_BASE;
        run(&mut cpu, &mut mem, 1);
        assert_eq!(cpu.state.gprs[0], KERNEL_BASE, "no PAC inserted");
        assert_eq!(cpu.stats().pac_signs, 0);
    }

    #[test]
    fn pre_v83_core_nops_hint_forms_and_rejects_reg_forms() {
        let insns = [
            Insn::Pac1716 { key: InsnKey::B },
            Insn::Pac {
                key: PacKey::IB,
                rd: Reg::x(0),
                rn: Reg::x(1),
            },
        ];
        let (mut cpu, mut mem) = machine(&insns);
        cpu.features.pauth = false;
        cpu.state.gprs[17] = KERNEL_BASE;
        assert_eq!(cpu.step(&mut mem), Ok(Step::Executed));
        assert_eq!(cpu.state.gprs[17], KERNEL_BASE, "1716 form is a NOP");
        let err = cpu.step(&mut mem).unwrap_err();
        assert!(matches!(err, CpuError::UndefinedInsn { .. }));
    }

    #[test]
    fn brk_is_an_upcall() {
        let (mut cpu, mut mem) = machine(&[Insn::Brk { imm: 0x77 }, Insn::Nop]);
        assert_eq!(cpu.step(&mut mem), Ok(Step::BrkTrap { imm: 0x77 }));
        assert_eq!(cpu.state.pc, KERNEL_BASE + 4, "resumes after the BRK");
    }

    #[test]
    fn call_helper_runs_to_sentinel() {
        let mut asm = Assembler::new();
        asm.push(Insn::AddImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 5,
            shifted: false,
        });
        asm.push(Insn::ret());
        let block = asm.finish(KERNEL_BASE);
        let (mut cpu, mut mem) = machine(&[]);
        let ctx = cpu.translation_ctx();
        mem.write_bytes(&ctx, KERNEL_BASE, &block.to_bytes())
            .unwrap_err(); // text page is not writable through the MMU...
        for (i, w) in block.to_words().iter().enumerate() {
            let pa = mem
                .translate(
                    &ctx,
                    KERNEL_BASE + 4 * i as u64,
                    camo_mem::AccessType::Execute,
                )
                .unwrap();
            mem.phys_mut().write_u32(pa, *w).unwrap();
        }
        let result = cpu.call(&mut mem, KERNEL_BASE, &[37], 100).unwrap();
        assert_eq!(result.x0, 42);
        assert!(result.cycles > 0);
    }

    #[test]
    fn mrs_from_el0_faults() {
        let (mut cpu, mut mem) = machine(&[Insn::Mrs {
            rt: Reg::x(0),
            sr: SysReg::ApibKeyLoEl1,
        }]);
        // Make the page EL0-executable and drop to EL0.
        mem.set_attr(
            TableId::from_raw(cpu.state.sysreg(SysReg::Ttbr0El1)),
            KERNEL_BASE,
            S1Attr {
                el0_read: true,
                el0_write: false,
                el0_exec: true,
                el1_write: false,
                el1_exec: true,
            },
        );
        cpu.state.el = El::El0;
        cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
        let step = cpu.step(&mut mem).unwrap();
        assert!(matches!(step, Step::FaultTaken { .. }));
        assert_eq!(cpu.state.el, El::El1, "vectored to EL1");
        assert_eq!(
            cpu.state.sysreg(SysReg::EsrEl1) >> 26,
            ec::TRAPPED_MSR,
            "syndrome identifies a trapped MSR/MRS"
        );
    }

    #[test]
    fn svc_vectors_to_el1_entry() {
        let (mut cpu, mut mem) = machine(&[Insn::Svc { imm: 7 }]);
        cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
        cpu.state.el = El::El0;
        // EL0 needs an executable mapping: reuse the text page.
        mem.set_attr(
            TableId::from_raw(cpu.state.sysreg(SysReg::Ttbr0El1)),
            KERNEL_BASE,
            S1Attr {
                el0_read: true,
                el0_write: false,
                el0_exec: true,
                el1_write: false,
                el1_exec: true,
            },
        );
        let step = cpu.step(&mut mem).unwrap();
        assert_eq!(step, Step::SvcTaken { imm: 7 });
        assert_eq!(cpu.state.el, El::El1);
        assert_eq!(
            cpu.state.pc,
            KERNEL_BASE + 0x8000 + vector::SYNC_LOWER_EL,
            "lower-EL sync vector"
        );
        assert_eq!(cpu.state.sysreg(SysReg::ElrEl1), KERNEL_BASE + 4);
        assert_eq!(cpu.state.sysreg(SysReg::EsrEl1) >> 26, ec::SVC64);
    }

    #[test]
    fn eret_returns_to_saved_context() {
        let (mut cpu, mut mem) = machine(&[Insn::Eret]);
        cpu.state.set_sysreg(SysReg::ElrEl1, KERNEL_BASE + 0x100);
        cpu.state.set_sysreg(SysReg::SpsrEl1, 0); // EL0, IRQs unmasked
        let step = cpu.step(&mut mem).unwrap();
        assert_eq!(
            step,
            Step::EretTo {
                el: El::El0,
                pc: KERNEL_BASE + 0x100
            }
        );
        assert_eq!(cpu.state.el, El::El0);
        assert!(!cpu.state.irq_masked);
    }

    #[test]
    fn irq_taken_when_unmasked() {
        let (mut cpu, mut mem) = machine(&[Insn::Nop, Insn::Nop]);
        cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
        cpu.state.irq_masked = false;
        cpu.raise_irq();
        let step = cpu.step(&mut mem).unwrap();
        assert_eq!(step, Step::IrqTaken);
        assert_eq!(cpu.state.pc, KERNEL_BASE + 0x8000 + vector::IRQ_SAME_EL);
        // Masked again inside the handler.
        assert!(cpu.state.irq_masked);
    }

    #[test]
    fn ipi_posts_queue_and_assert_the_ipi_line() {
        let (mut cpu, mut mem) = machine(&[Insn::Nop, Insn::Nop]);
        cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
        cpu.post_ipi(IpiKind::Reschedule);
        cpu.post_ipi(IpiKind::TlbShootdown);
        assert_eq!(cpu.pending_ipis(), 2);
        assert_eq!(cpu.stats().ipis, 2);
        // Host-side handling drains FIFO and acknowledges the IPI line.
        assert_eq!(
            cpu.take_ipis(),
            vec![IpiKind::Reschedule, IpiKind::TlbShootdown]
        );
        assert_eq!(cpu.pending_ipis(), 0);
        // With the IPI acknowledged, no spurious IRQ is taken.
        cpu.state.irq_masked = false;
        assert_eq!(cpu.step(&mut mem), Ok(Step::Executed));
    }

    #[test]
    fn take_ipis_does_not_swallow_a_device_irq() {
        // The device IRQ line and the IPI line are distinct: draining the
        // IPI queue must not acknowledge an interrupt raised via
        // raise_irq.
        let (mut cpu, mut mem) = machine(&[Insn::Nop, Insn::Nop]);
        cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
        cpu.raise_irq();
        cpu.post_ipi(IpiKind::Reschedule);
        assert_eq!(cpu.take_ipis(), vec![IpiKind::Reschedule]);
        cpu.state.irq_masked = false;
        assert_eq!(cpu.step(&mut mem), Ok(Step::IrqTaken), "device IRQ kept");
    }

    #[test]
    fn unacknowledged_ipi_is_taken_as_an_irq() {
        let (mut cpu, mut mem) = machine(&[Insn::Nop, Insn::Nop]);
        cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
        cpu.state.irq_masked = false;
        cpu.post_ipi(IpiKind::Reschedule);
        assert_eq!(cpu.step(&mut mem), Ok(Step::IrqTaken));
        assert_eq!(cpu.state.pc, KERNEL_BASE + 0x8000 + vector::IRQ_SAME_EL);
        // The payload is still queued for the host-side handler.
        assert_eq!(cpu.take_ipis(), vec![IpiKind::Reschedule]);
    }

    #[test]
    fn cpu_ids_default_to_zero_and_follow_with_id() {
        assert_eq!(Cpu::default().id(), 0);
        assert_eq!(Cpu::with_id(HwFeatures::default(), 3).id(), 3);
    }

    #[test]
    fn pac_memo_counters_are_mirrored_into_stats() {
        // A loop that signs the same pointer with the same modifier twice:
        // second sign hits the memo, and the stats see it after the step.
        let (mut cpu, mut mem) = machine(&[
            Insn::Pac {
                key: PacKey::IB,
                rd: Reg::x(0),
                rn: Reg::x(1),
            },
            Insn::Pac {
                key: PacKey::IB,
                rd: Reg::x(2),
                rn: Reg::x(1),
            },
        ]);
        cpu.state
            .set_pauth_key(camo_isa::PauthKey::IB, camo_qarma::QarmaKey::new(7, 9));
        cpu.state.gprs[0] = KERNEL_BASE + 0x123;
        cpu.state.gprs[2] = KERNEL_BASE + 0x123;
        cpu.state.gprs[1] = 0x42;
        run(&mut cpu, &mut mem, 2);
        assert_eq!(cpu.stats().pac_memo_misses, 1);
        assert_eq!(cpu.stats().pac_memo_hits, 1);
    }

    #[test]
    fn stats_merge_adds_totals() {
        let a = CpuStats {
            instructions: 10,
            pac_signs: 1,
            ipis: 2,
            ..CpuStats::default()
        };
        let mut b = CpuStats {
            instructions: 5,
            tlb_hits: 7,
            ..CpuStats::default()
        };
        b.merge(&a);
        assert_eq!(b.instructions, 15);
        assert_eq!(b.pac_signs, 1);
        assert_eq!(b.tlb_hits, 7);
        assert_eq!(b.ipis, 2);
    }

    #[test]
    fn reading_xom_page_faults_into_kernel() {
        let (mut cpu, mut mem) = machine(&[Insn::Ldr {
            rt: Reg::x(0),
            rn: Reg::x(1),
            mode: AddrMode::Unsigned(0),
        }]);
        // Turn the second page into XOM.
        let ctx = cpu.translation_ctx();
        let pa = mem
            .translate(&ctx, KERNEL_BASE + 0x1000, camo_mem::AccessType::Read)
            .unwrap();
        mem.protect_stage2(
            camo_mem::Frame::containing(pa),
            camo_mem::S2Attr::execute_only(),
        )
        .unwrap();
        cpu.state.set_sysreg(SysReg::VbarEl1, KERNEL_BASE + 0x8000);
        cpu.state.gprs[1] = KERNEL_BASE + 0x1000;
        let step = cpu.step(&mut mem).unwrap();
        assert!(matches!(
            step,
            Step::FaultTaken {
                fault: MemFault::Stage2 { .. }
            }
        ));
        assert_eq!(cpu.state.sysreg(SysReg::FarEl1), KERNEL_BASE + 0x1000);
    }
}
