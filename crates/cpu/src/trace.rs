//! The trace tier of the translation engine (tier 2).
//!
//! Tier 1 ([`crate::block`]) caches single basic blocks and chains them
//! within one [`Cpu::run_block`] call, but still pays a cache probe, a
//! chain-target computation and a per-instruction `Insn` match for every
//! block executed. This module promotes *hot chains* into **traces**: one
//! cached unit stitching the frequently-taken block sequence together,
//! with the per-instruction dispatch flattened into a pre-resolved
//! function-pointer array (the classic threaded-interpreter step beyond a
//! block cache). Operands are folded at build time — shifted immediates,
//! bitfield masks, `ADR` targets and key selections become plain struct
//! fields — so an op's handler does no decoding of its own at all. A
//! trace that closes a loop jumps back into itself, so a hot loop retires
//! up to [`TRACE_CALL_INSNS`] instructions per `run_block` call with a
//! *single* entry validation.
//!
//! # Promotion and recording
//!
//! Every tier-1 block carries a hotness counter, bumped on each cache
//! hit. When a block reaches [`HOT_THRESHOLD`] and no trace covers its
//! `(physical, virtual)` entry, the engine starts *recording*: for the
//! rest of the current call it notes each fully-executed block at the
//! chain-on point (address pair, terminator presence, observed next PC).
//! Recording stops at [`MAX_TRACE_BLOCKS`], when the chain revisits a
//! recorded block (a closed loop — the trace will jump back internally),
//! or at any event a trace cannot contain (a step-path fallback, a fault,
//! a self-modifying store, an executed trace). When the call returns, the
//! recording is *finalized*: each block is re-decoded from the current
//! bytes, the bodies are flattened into the op array, and the whole unit
//! is stamped with the current translation generation plus the write
//! version of every constituent code page. A recording of one block that
//! does not loop back into itself is discarded — it would re-run exactly
//! what its tier-1 entry already runs, paying entry validation for no
//! stitching or looping win. Promotion is driven purely by executed
//! instructions, so it is deterministic: a fleet replayed sequentially
//! promotes exactly the traces the parallel run promoted.
//!
//! # Guards and side exits
//!
//! A trace predicts one concrete path. Every control-flow op inside it
//! compares the target it actually computed against the recorded
//! `expected` target: on a match execution falls through (or jumps back
//! for the loop edge), on a mismatch the op has already performed its
//! full architectural effect, so the trace simply materializes the PC and
//! *side-exits* back to tier 1 — never replaying or undoing anything.
//! Stores re-check the write version of every constituent page after
//! executing and side-exit on a hit, which is strictly stronger than
//! tier 1's own self-modification abort. `SVC`/`BRK`/`ERET` and faults
//! end the call through the shared step semantics exactly as tier 1 does.
//!
//! # Entry validation and invalidation
//!
//! At trace entry the engine checks, in order: the entry `(pa, va)` pair,
//! the write version of every constituent page (bytes unchanged), and the
//! translation generation. A generation match proves every mapping the
//! trace spans is exactly as it was stamped — any `map`/`unmap`/
//! `set_attr`/stage-2 change bumps the generation — so the per-page
//! fetch-permission walks are skipped on the hot path. On a generation
//! mismatch the walks re-run for every page under the current
//! configuration: success re-stamps the trace (the module-churn
//! re-stamp rule of [`crate::block`], applied per page), while a failed
//! walk or a moved page version discards the trace and falls back to
//! tier 1, which raises any fault at the architecturally correct point.
//!
//! # PAC sites
//!
//! Each `PAC*`/`AUT*` op in a trace owns a private one-entry memo keyed
//! on `(value, modifier, key, tbi)` — the pre-resolved QARMA schedule +
//! MAC-memo slot for that site. A hit bypasses the shared PAC unit
//! entirely (the architectural counters still advance identically); a
//! miss computes through the PAC unit as usual and refills the site.
//! Site hits therefore do not show up in the `pac_memo_*` observability
//! counters — those count the shared unit only.

use crate::block;
use crate::exec::{class_of, ec, mask_lo, to_pac_key, Cpu, CpuError, Step};
use crate::pac::{strip_pac, KeyClass};
use camo_isa::{AddrMode, CostModel, Insn, PacKey, PairMode, Reg, SysReg};
use camo_mem::{AccessType, El, Frame, MemFault, Memory, TransMemo, TranslationCtx, PAGE_SIZE};
use camo_qarma::QarmaKey;

/// Number of direct-mapped trace-cache slots (power of two). Traces only
/// form at hot block entries, so far fewer slots than the block cache
/// cover the working set.
pub const TRACE_CACHE_SIZE: usize = 2048;

/// Tier-1 block-cache hits before a block's chain is promoted to a trace.
pub const HOT_THRESHOLD: u32 = 16;

/// Upper bound on blocks recorded into one trace.
pub const MAX_TRACE_BLOCKS: usize = 16;

/// Upper bound on distinct code pages a trace may span (each page costs a
/// stamp check at entry and a permission walk after a generation change).
pub const MAX_TRACE_PAGES: usize = 4;

/// Upper bound on flattened ops per trace (memory bound).
pub const MAX_TRACE_OPS: usize = 512;

/// Upper bound on instructions retired per [`Cpu::run_block`] call once a
/// trace loops internally. Equal to tier 1's own per-call retirement
/// bound (`MAX_CHAIN × MAX_BLOCK_INSNS`), so the documented overshoot
/// bound of the kernel's instruction budgets is unchanged by the trace
/// engine.
pub const TRACE_CALL_INSNS: u64 = (block::MAX_CHAIN * block::MAX_BLOCK_INSNS) as u64;

/// Direct-mapped slot for the trace entered at `pa` (same Fibonacci
/// spread as [`crate::block`]'s cache, narrowed to this cache's size).
pub(crate) fn trace_slot(pa: u64) -> usize {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    ((pa >> 2).wrapping_mul(GOLDEN) >> 53) as usize & (TRACE_CACHE_SIZE - 1)
}

/// What a guard op does with control when its prediction holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pass {
    /// Fall through to the next op (mid-trace terminator whose target is
    /// the next stitched block).
    Next,
    /// Jump back to the op at this index (the loop edge).
    Jump(u32),
    /// Leave the trace with `state.pc = expected` (the trace's exit).
    End,
}

/// What one executed op tells the trace runner. Kept register-sized on
/// purpose: every op execution returns one of these through a function
/// pointer, so a by-value `Result` payload here would force every handler
/// call through a stack return slot. The rare call-ending outcome parks
/// its `Result` in [`TraceCtx::exit`] instead.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpOutcome {
    /// Retired; continue with the next op.
    Next,
    /// Retired; continue at the op index (a taken loop edge).
    Jump(u32),
    /// Retired, but the prediction failed or a store hit a constituent
    /// page: `state.pc` is set, leave the trace to tier 1.
    Side,
    /// Retired through [`Pass::End`]: `state.pc` is set, leave the trace.
    End,
    /// The op ended the whole `run_block` call (SVC/BRK/ERET, a vectored
    /// fault, an unhandled fault, an undefined encoding); the outcome is
    /// in [`TraceCtx::exit`].
    Exit,
}

/// Borrows of the trace's guard state handed to each op: the constituent
/// pages (store guards), the per-site PAC memos, and the parking slot for
/// a call-ending outcome (see [`OpOutcome::Exit`]).
pub(crate) struct TraceCtx<'a> {
    pages: &'a [TracePage],
    sites: &'a mut [PacSite],
    mems: &'a mut [TransMemo],
    exit: Option<Result<Step, CpuError>>,
}

/// The pre-resolved handler for one flattened op.
pub(crate) type OpFn =
    fn(&mut Cpu, &mut Memory, &TranslationCtx, &TraceOp, &mut TraceCtx) -> OpOutcome;

/// One flattened instruction inside a trace.
///
/// The operand fields are *pre-folded* at build time by [`make_op`]:
/// shifted immediates, bitfield masks and `ADR` targets land in
/// `imm`/`imm2`, register operands in `rd`/`rn`/`rm`, hint-form PAC key
/// aliases are resolved into `key`, and so on. Which fields mean what is
/// a private contract between `make_op` and the handler it installed in
/// `exec`; `insn` keeps the full decoded form for the generic fallback
/// handler.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceOp {
    exec: OpFn,
    insn: Insn,
    /// Virtual address of the instruction (ops carry their own PC; the
    /// architectural PC is materialized only when the trace is left).
    va: u64,
    /// The next PC the recording observed — the guard's prediction.
    expected: u64,
    /// Precomputed taken-branch target for PC-relative branches.
    target: u64,
    /// First pre-folded operand payload (constant, folded immediate,
    /// field shift …).
    imm: u64,
    /// Second pre-folded operand payload (keep-mask, field mask …).
    imm2: u64,
    /// Cost-model cycles, precomputed at build time (the sum over every
    /// folded instruction for a superop).
    cycles: u32,
    /// Architectural instructions this op retires (1, or the run length
    /// of a folded superop — see `fold_imm_accum` in `finalize_trace`).
    count: u16,
    pass: Pass,
    /// Index into the trace's PAC-site memos (`u16::MAX` when the op has
    /// no site).
    site: u16,
    rd: Reg,
    rn: Reg,
    rm: Reg,
    key: PacKey,
    mode: AddrMode,
    pmode: PairMode,
    sr: SysReg,
}

/// One constituent code page of a trace, with its freshness stamps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TracePage {
    va: u64,
    pa: u64,
    frame: Frame,
    version: u64,
}

/// A per-op PAC memo: the whole sign/auth computation this site last
/// performed. Validated per execution against the live key material and
/// `SCTLR` enables, so key switches and `SCTLR` writes inside the trace
/// are honoured exactly.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PacSite {
    valid: bool,
    ok: bool,
    tbi: bool,
    key: QarmaKey,
    modifier: u64,
    value: u64,
    result: u64,
}

/// One cached trace.
#[derive(Debug, Clone)]
pub(crate) struct TraceEntry {
    /// Physical address of the entry instruction (the cache key).
    pub(crate) entry_pa: u64,
    /// Virtual address the entry was recorded at (ops carry VAs, so an
    /// aliased mapping of the same frame must not enter this trace).
    pub(crate) entry_va: u64,
    /// Translation generation the page walks were last valid under
    /// (re-stamped after a successful re-walk of every page).
    generation: u64,
    pages: Vec<TracePage>,
    ops: Vec<TraceOp>,
    sites: Vec<PacSite>,
    mems: Vec<TransMemo>,
}

/// One block noted during recording.
#[derive(Debug, Clone, Copy)]
struct RecordedBlock {
    pa: u64,
    va: u64,
    has_term: bool,
    /// The PC observed after the block executed.
    next: u64,
}

/// An in-flight recording (lives at most one `run_block` call).
#[derive(Debug, Clone)]
pub(crate) struct TraceRecorder {
    blocks: Vec<RecordedBlock>,
    done: bool,
}

impl TraceRecorder {
    pub(crate) fn new() -> Self {
        TraceRecorder {
            blocks: Vec::new(),
            done: false,
        }
    }

    /// Notes a fully-executed block and the PC it handed to the chain.
    pub(crate) fn record(&mut self, pa: u64, va: u64, has_term: bool, next: u64) {
        if self.done {
            return;
        }
        self.blocks.push(RecordedBlock {
            pa,
            va,
            has_term,
            next,
        });
        if self.blocks.len() >= MAX_TRACE_BLOCKS || self.blocks.iter().any(|b| b.va == next) {
            // Full, or the chain just closed a loop back into the
            // recording: the finalized trace will jump internally.
            self.done = true;
        }
    }

    /// Stops appending (an event a trace cannot contain occurred); the
    /// blocks already recorded still finalize at call end.
    pub(crate) fn finish(&mut self) {
        self.done = true;
    }
}

/// What probing the trace cache did for one chain position.
pub(crate) enum TraceOutcome {
    /// No fresh trace at this entry; run tier 1.
    NotEntered,
    /// A trace executed and left via a guard (`state.pc` is set); the
    /// chain continues at the new PC.
    Continued,
    /// A trace executed an op that ended the call.
    Ended(Result<Step, CpuError>),
}

impl Cpu {
    /// Probes, validates and runs the trace entered at `(pa, pc)`, if
    /// any. Cycle/instruction charges go into the caller's accumulators.
    pub(crate) fn try_trace(
        &mut self,
        mem: &mut Memory,
        ctx: &TranslationCtx,
        pc: u64,
        pa: u64,
        generation: u64,
        acc_cycles: &mut u64,
        acc_insns: &mut u64,
    ) -> TraceOutcome {
        let slot = trace_slot(pa);
        // Read-only fast reject first: this probe runs at every chain
        // position, and most positions head no trace — the `take`/put
        // dance (two slot writes) is saved for actual entries.
        match self.trace_cache[slot].as_ref() {
            Some(t) if t.entry_pa == pa && t.entry_va == pc => {}
            _ => return TraceOutcome::NotEntered,
        }
        let mut tr = self.trace_cache[slot].take().expect("probed above");
        // Bytes first: any moved page version means the code changed and
        // the flattened ops are stale — discard.
        for p in &tr.pages {
            if mem.phys().frame_version(p.frame) != p.version {
                self.stats.trace_invalidations += 1;
                return TraceOutcome::NotEntered;
            }
        }
        if tr.generation != generation {
            // The translation configuration moved since the stamps. Re-run
            // the fetch-permission walk for every constituent page under
            // the current configuration; a failure (unmap, execute
            // revocation, stage-2 seal) or a moved mapping discards the
            // trace — tier 1 then raises any fault at the right point.
            for p in &tr.pages {
                match mem.fetch_loc(ctx, p.va) {
                    Ok(walked) if walked == p.pa => {}
                    _ => {
                        self.stats.trace_invalidations += 1;
                        return TraceOutcome::NotEntered;
                    }
                }
            }
            tr.generation = generation;
        }
        if let Some(rec) = self.trace_recorder.as_mut() {
            // A recording cannot span a trace execution (the recorded
            // chain would have a gap); keep the prefix.
            rec.finish();
        }
        self.stats.trace_hits += 1;
        let out = self.run_trace(mem, ctx, &mut tr, acc_cycles, acc_insns);
        self.trace_cache[slot] = Some(tr);
        out
    }

    fn run_trace(
        &mut self,
        mem: &mut Memory,
        ctx: &TranslationCtx,
        tr: &mut TraceEntry,
        acc_cycles: &mut u64,
        acc_insns: &mut u64,
    ) -> TraceOutcome {
        let ops: &[TraceOp] = &tr.ops;
        let mut tc = TraceCtx {
            pages: &tr.pages,
            sites: &mut tr.sites,
            mems: &mut tr.mems,
            exit: None,
        };
        let mut cycles = 0u64;
        let mut insns = 0u64;
        let mut i = 0usize;
        let out = loop {
            let op = &ops[i];
            // Charge-then-execute, like the step path: a faulting op is
            // still charged.
            cycles += u64::from(op.cycles);
            insns += u64::from(op.count);
            match (op.exec)(self, mem, ctx, op, &mut tc) {
                OpOutcome::Next => i += 1,
                OpOutcome::Jump(target) => {
                    if *acc_insns + insns >= TRACE_CALL_INSNS {
                        // The per-call retirement bound: leave at the loop
                        // edge; the next call re-enters the trace.
                        self.state.pc = ops[target as usize].va;
                        break TraceOutcome::Continued;
                    }
                    i = target as usize;
                }
                OpOutcome::Side | OpOutcome::End => break TraceOutcome::Continued,
                OpOutcome::Exit => {
                    break TraceOutcome::Ended(
                        tc.exit.take().expect("an Exit op parks its outcome"),
                    );
                }
            }
        };
        *acc_cycles += cycles;
        *acc_insns += insns;
        out
    }

    /// Builds and installs a trace from the call's recording, re-decoding
    /// every block from the *current* bytes and stamping the current
    /// generation and page versions.
    pub(crate) fn finalize_trace(&mut self, mem: &Memory, rec: TraceRecorder) {
        let Some(first) = rec.blocks.first().copied() else {
            return;
        };
        let generation = mem.translation_generation();
        let phys = mem.phys();
        let mut pages: Vec<TracePage> = Vec::new();
        let mut ops: Vec<TraceOp> = Vec::new();
        // Block-entry VAs → op index, for resolving the loop edge.
        let mut starts: Vec<(u64, u32)> = Vec::new();
        let mut sites: u16 = 0;
        let mut mems: u16 = 0;
        // Ops are only usable up to the last terminator (a trace must end
        // in a guard that sets the PC); trailing fall-through bodies are
        // truncated.
        let mut kept = 0usize;
        let mut last_next = 0u64;
        for b in &rec.blocks {
            let page_va = b.va & !(PAGE_SIZE - 1);
            let page_pa = b.pa & !(PAGE_SIZE - 1);
            if !pages.iter().any(|p| p.pa == page_pa && p.va == page_va) {
                if pages.len() == MAX_TRACE_PAGES {
                    break;
                }
                let frame = Frame::containing(page_pa);
                pages.push(TracePage {
                    va: page_va,
                    pa: page_pa,
                    frame,
                    version: phys.frame_version(frame),
                });
            }
            let block =
                block::decode_block(phys, b.pa, generation, 0, self.features.pauth, &self.cost);
            if block.fallback.is_some()
                || (block.body.is_empty() && block.terminator.is_none())
                || block.terminator.is_some() != b.has_term
            {
                // The bytes changed shape since the recording executed
                // (a store later in the same call): stop stitching here.
                break;
            }
            if ops.len() + block.body.len() + usize::from(b.has_term) > MAX_TRACE_OPS {
                break;
            }
            let base = ops.len();
            starts.push((b.va, base as u32));
            for (i, insn) in block.body.iter().enumerate() {
                let op = make_op(insn, b.va + 4 * i as u64, &self.cost, &mut sites, &mut mems);
                // Superop folding: a run of immediate adds/subs
                // accumulating into one register collapses into a single
                // op — the intermediate values are unobservable (no
                // guards, faults or exits between them), the final value
                // is the same wrapping sum, and the folded op charges the
                // run's summed cycles and instruction count. Only within
                // one block's body, past its first op: jump targets are
                // block starts, which must stay addressable.
                if ops.len() > base {
                    let prev = ops.last_mut().expect("non-empty past base");
                    if let (Some((rp, ap)), Some((ro, ao))) = (imm_accum(prev), imm_accum(&op)) {
                        if rp == ro {
                            prev.exec = op_add_imm;
                            prev.insn = Insn::AddImm {
                                rd: rp,
                                rn: rp,
                                imm12: 0,
                                shifted: false,
                            };
                            prev.imm = ap.wrapping_add(ao);
                            prev.cycles += op.cycles;
                            prev.count += op.count;
                            continue;
                        }
                    }
                }
                ops.push(op);
            }
            match block.terminator {
                Some(term) => {
                    let va = b.va + 4 * block.body.len() as u64;
                    ops.push(make_term(
                        &term, va, b.next, &self.cost, &mut sites, &mut mems,
                    ));
                    kept = ops.len();
                    last_next = b.next;
                }
                None => {
                    // A page-boundary fall-through: the recorded next must
                    // be the fall-through PC or the bytes changed.
                    if b.next != b.va + 4 * block.body.len() as u64 {
                        break;
                    }
                }
            }
        }
        ops.truncate(kept);
        let Some(last) = ops.last_mut() else {
            // No terminator survived — nothing worth caching.
            self.decline_trace(first.pa);
            return;
        };
        // The final guard either closes the loop back into the trace or
        // exits to the recorded continuation. A recording that neither
        // loops nor stitched at least two blocks is declined: it would
        // re-run exactly what its tier-1 entry already runs, paying trace
        // entry validation for no win — and the head block remembers the
        // decline, because re-recording every promotion period would only
        // repeat the discovery.
        let stitched = starts
            .iter()
            .filter(|(_, idx)| (*idx as usize) < kept)
            .count();
        match starts
            .iter()
            .find(|(va, idx)| *va == last_next && (*idx as usize) < kept)
        {
            Some(&(_, idx)) => last.pass = Pass::Jump(idx),
            None if stitched >= 2 => last.pass = Pass::End,
            None => {
                self.decline_trace(first.pa);
                return;
            }
        }
        // Drop pages only truncated ops touched (a stale stamp there
        // would invalidate spuriously).
        pages.retain(|p| ops.iter().any(|o| o.va & !(PAGE_SIZE - 1) == p.va));
        let entry = Box::new(TraceEntry {
            entry_pa: first.pa,
            entry_va: first.va,
            generation,
            pages,
            ops,
            sites: vec![PacSite::default(); usize::from(sites)],
            mems: vec![TransMemo::default(); usize::from(mems)],
        });
        self.stats.trace_misses += 1;
        self.trace_cache[trace_slot(first.pa)] = Some(entry);
    }

    /// Marks the tier-1 entry heading a declined recording so it is not
    /// promoted again (see [`block::BlockEntry::no_trace`]).
    fn decline_trace(&mut self, pa: u64) {
        let slot = block::block_slot(pa);
        if let Some(e) = self.block_cache[slot].as_mut() {
            if e.pa == pa {
                e.no_trace = true;
            }
        }
    }
}

/// The add-form accumulation `(register, wrapping delta)` of an op, when
/// it is a pure immediate add/sub into its own source register — the
/// shape the superop folding in [`Cpu::finalize_trace`] merges. A folded
/// op is normalized to `AddImm` (its `imm` field is authoritative; the
/// `imm12` in the normalized `insn` is not meaningful).
fn imm_accum(op: &TraceOp) -> Option<(Reg, u64)> {
    match op.insn {
        Insn::AddImm { rd, rn, .. } if rd == rn && rd != Reg::Xzr => Some((rd, op.imm)),
        Insn::SubImm { rd, rn, .. } if rd == rn && rd != Reg::Xzr => {
            Some((rd, op.imm.wrapping_neg()))
        }
        _ => None,
    }
}

fn alloc_site(sites: &mut u16) -> u16 {
    let i = *sites;
    *sites += 1;
    i
}

/// Builds the flattened op for one body instruction, folding its operands
/// into the flat [`TraceOp`] fields and picking the specialized handler
/// (also the handler table for terminators — [`make_term`] layers the
/// guard data on top).
fn make_op(insn: &Insn, va: u64, cost: &CostModel, sites: &mut u16, mems: &mut u16) -> TraceOp {
    let mut op = TraceOp {
        exec: op_step,
        insn: *insn,
        va,
        expected: va + 4,
        target: 0,
        imm: 0,
        imm2: 0,
        cycles: cost.cycles(insn) as u32,
        count: 1,
        pass: Pass::Next,
        site: u16::MAX,
        rd: Reg::Xzr,
        rn: Reg::Xzr,
        rm: Reg::Xzr,
        key: PacKey::IA,
        mode: AddrMode::Unsigned(0),
        pmode: PairMode::SignedOffset(0),
        sr: SysReg::CntvctEl0,
    };
    op.exec = match *insn {
        Insn::Movz { rd, imm16, shift } => {
            op.rd = rd;
            op.imm = u64::from(imm16) << (16 * shift);
            op_mov_const
        }
        Insn::Movn { rd, imm16, shift } => {
            op.rd = rd;
            op.imm = !(u64::from(imm16) << (16 * shift));
            op_mov_const
        }
        Insn::Adr { rd, offset } => {
            op.rd = rd;
            op.imm = va.wrapping_add(offset as i64 as u64);
            op_mov_const
        }
        Insn::Movk { rd, imm16, shift } => {
            op.rd = rd;
            op.imm = u64::from(imm16) << (16 * shift);
            op.imm2 = !(0xFFFFu64 << (16 * shift));
            op_movk
        }
        Insn::AddImm {
            rd,
            rn,
            imm12,
            shifted,
        } => {
            op.rd = rd;
            op.rn = rn;
            op.imm = if shifted {
                u64::from(imm12) << 12
            } else {
                u64::from(imm12)
            };
            op_add_imm
        }
        Insn::SubImm {
            rd,
            rn,
            imm12,
            shifted,
        } => {
            op.rd = rd;
            op.rn = rn;
            op.imm = if shifted {
                u64::from(imm12) << 12
            } else {
                u64::from(imm12)
            };
            op_sub_imm
        }
        Insn::AddReg { rd, rn, rm } => {
            op.rd = rd;
            op.rn = rn;
            op.rm = rm;
            op_add_reg
        }
        Insn::SubReg { rd, rn, rm } => {
            op.rd = rd;
            op.rn = rn;
            op.rm = rm;
            op_sub_reg
        }
        Insn::AndReg { rd, rn, rm } => {
            op.rd = rd;
            op.rn = rn;
            op.rm = rm;
            op_and_reg
        }
        Insn::OrrReg { rd, rn, rm } => {
            op.rd = rd;
            op.rn = rn;
            op.rm = rm;
            op_orr_reg
        }
        Insn::EorReg { rd, rn, rm } => {
            op.rd = rd;
            op.rn = rn;
            op.rm = rm;
            op_eor_reg
        }
        Insn::Bfm { rd, rn, immr, imms } => {
            op.rd = rd;
            op.rn = rn;
            let r = u32::from(immr);
            let s = u32::from(imms);
            if s >= r {
                // Extract-and-insert-low (BFXIL shape):
                //   (dst & !mask) | ((src >> r) & mask)
                op.imm = u64::from(r);
                op.imm2 = mask_lo(s - r + 1);
            } else {
                // Insert-at-lsb (BFI shape):
                //   (dst & !(mask << lsb)) | ((src << lsb) & (mask << lsb))
                op.imm = u64::from(64 - r);
                op.imm2 = mask_lo(s + 1) << (64 - r);
            }
            if s >= r {
                op_bfm_lo
            } else {
                op_bfm_hi
            }
        }
        Insn::Ubfm { rd, rn, immr, imms } => {
            op.rd = rd;
            op.rn = rn;
            let r = u32::from(immr);
            let s = u32::from(imms);
            if s >= r {
                // LSR/UBFX shape: (src >> r) & mask.
                op.imm = u64::from(r);
                op.imm2 = mask_lo(s - r + 1);
                op_ubfm_lsr
            } else {
                // LSL/UBFIZ shape: (src & mask) << (64 - r).
                op.imm = u64::from(64 - r);
                op.imm2 = mask_lo(s + 1);
                op_ubfm_lsl
            }
        }
        Insn::Ldr { rt, rn, mode } => {
            op.rd = rt;
            op.rn = rn;
            op.mode = mode;
            op.site = alloc_site(mems);
            op_ldr
        }
        Insn::Str { rt, rn, mode } => {
            op.rd = rt;
            op.rn = rn;
            op.mode = mode;
            op.site = alloc_site(mems);
            op_str
        }
        Insn::Ldp { rt, rt2, rn, mode } => {
            op.rd = rt;
            op.rm = rt2;
            op.rn = rn;
            op.pmode = mode;
            op.site = alloc_site(mems);
            op_ldp
        }
        Insn::Stp { rt, rt2, rn, mode } => {
            op.rd = rt;
            op.rm = rt2;
            op.rn = rn;
            op.pmode = mode;
            op.site = alloc_site(mems);
            op_stp
        }
        Insn::Msr { sr, rt } => {
            op.sr = sr;
            op.rd = rt;
            op_msr
        }
        Insn::Mrs { rt, sr } => {
            op.sr = sr;
            op.rd = rt;
            op_mrs
        }
        Insn::Xpaci { rd } | Insn::Xpacd { rd } => {
            op.rd = rd;
            op_xpac
        }
        Insn::Nop => op_nop,
        Insn::B { .. } => op_b,
        Insn::Bl { .. } => op_bl,
        Insn::Br { rn } => {
            op.rn = rn;
            op_br
        }
        Insn::Blr { rn } => {
            op.rn = rn;
            op_blr
        }
        Insn::Ret { rn } => {
            op.rn = rn;
            op_ret
        }
        Insn::Cbz { rt, .. } => {
            op.rd = rt;
            op_cbz
        }
        Insn::Cbnz { rt, .. } => {
            op.rd = rt;
            op_cbnz
        }
        Insn::Pac { key, rd, rn } => {
            op.key = key;
            op.rd = rd;
            op.rn = rn;
            op.site = alloc_site(sites);
            op_pac
        }
        Insn::Aut { key, rd, rn } => {
            op.key = key;
            op.rd = rd;
            op.rn = rn;
            op.site = alloc_site(sites);
            op_aut
        }
        Insn::PacSp { key } => {
            op.key = to_pac_key(key);
            op.rd = Reg::LR;
            op.site = alloc_site(sites);
            op_pac_sp
        }
        Insn::AutSp { key } => {
            op.key = to_pac_key(key);
            op.rd = Reg::LR;
            op.site = alloc_site(sites);
            op_aut_sp
        }
        Insn::Pac1716 { key } => {
            // Same handler as the register form: modifier in IP0, value
            // in IP1, key alias resolved here.
            op.key = to_pac_key(key);
            op.rd = Reg::IP1;
            op.rn = Reg::IP0;
            op.site = alloc_site(sites);
            op_pac
        }
        Insn::Aut1716 { key } => {
            op.key = to_pac_key(key);
            op.rd = Reg::IP1;
            op.rn = Reg::IP0;
            op.site = alloc_site(sites);
            op_aut
        }
        Insn::Reta { key } => {
            op.key = to_pac_key(key);
            op.rd = Reg::LR;
            op.site = alloc_site(sites);
            op_reta
        }
        Insn::Blra { key, rn, rm } => {
            op.key = to_pac_key(key);
            op.rn = rn;
            op.rm = rm;
            op.site = alloc_site(sites);
            op_blra
        }
        Insn::Bra { key, rn, rm } => {
            op.key = to_pac_key(key);
            op.rn = rn;
            op.rm = rm;
            op.site = alloc_site(sites);
            op_bra
        }
        // SVC/BRK/ERET/PACGA (and anything future) run through the full
        // one-instruction step semantics.
        _ => op_step,
    };
    op
}

/// Builds the guarded op for a block terminator: prediction from the
/// recording, precomputed PC-relative target.
fn make_term(
    insn: &Insn,
    va: u64,
    next: u64,
    cost: &CostModel,
    sites: &mut u16,
    mems: &mut u16,
) -> TraceOp {
    let mut op = make_op(insn, va, cost, sites, mems);
    op.expected = next;
    op.target = match insn {
        Insn::B { offset }
        | Insn::Bl { offset }
        | Insn::Cbz { offset, .. }
        | Insn::Cbnz { offset, .. } => va.wrapping_add(*offset as i64 as u64),
        _ => 0,
    };
    op
}

/// Applies the guard: the op computed `actual` as the next PC. A match
/// follows the trace's plan; a mismatch materializes the PC and leaves.
#[inline]
fn guard(cpu: &mut Cpu, op: &TraceOp, actual: u64) -> OpOutcome {
    if actual == op.expected {
        match op.pass {
            Pass::Next => OpOutcome::Next,
            Pass::Jump(i) => OpOutcome::Jump(i),
            Pass::End => {
                cpu.state.pc = actual;
                OpOutcome::End
            }
        }
    } else {
        cpu.state.pc = actual;
        OpOutcome::Side
    }
}

/// The post-store self-modification guard: a store that hit any
/// constituent code page leaves the trace after the store, exactly as
/// tier 1 aborts its block (the trace is strictly more conservative — it
/// also leaves for stores into *other* constituent pages).
#[inline]
fn smc_check(cpu: &mut Cpu, mem: &Memory, op: &TraceOp, tc: &TraceCtx) -> OpOutcome {
    for p in tc.pages {
        if mem.phys().frame_version(p.frame) != p.version {
            cpu.state.pc = op.va + 4;
            return OpOutcome::Side;
        }
    }
    OpOutcome::Next
}

/// The generic fallback: full one-instruction step semantics (used for
/// `SVC`/`BRK`/`ERET`/`PACGA`), guarded like any other op.
fn op_step(
    cpu: &mut Cpu,
    mem: &mut Memory,
    ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    // Materialize the PC first so an unhandled fault observes the same
    // architectural state the step path would leave.
    cpu.state.pc = op.va;
    match cpu.execute(mem, op.insn, op.va, ctx) {
        Ok(Step::Executed) => {
            if cpu.state.pc == op.expected {
                match op.pass {
                    Pass::Next => OpOutcome::Next,
                    Pass::Jump(i) => OpOutcome::Jump(i),
                    Pass::End => OpOutcome::End,
                }
            } else {
                OpOutcome::Side
            }
        }
        other => {
            tc.exit = Some(other);
            OpOutcome::Exit
        }
    }
}

macro_rules! trace_mem_try {
    ($cpu:expr, $op:expr, $tc:expr, $e:expr) => {{
        // Bind first: borrows inside `$e` (the op's memo slot) must end
        // before the fault arm takes `$tc` again.
        let result = $e;
        match result {
            Ok(v) => v,
            Err(fault) => {
                // Tier 1 reaches `vectored_fault` with the PC still at the
                // faulting instruction; match it before vectoring.
                $cpu.state.pc = $op.va;
                $tc.exit = Some($cpu.vectored_fault(fault, $op.va, false));
                return OpOutcome::Exit;
            }
        }
    }};
}

/// `MOVZ`/`MOVN`/`ADR`: the whole result folded to a constant at build.
fn op_mov_const(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    cpu.state.write(op.rd, op.imm);
    OpOutcome::Next
}

fn op_movk(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let old = cpu.state.read(op.rd);
    cpu.state.write(op.rd, (old & op.imm2) | op.imm);
    OpOutcome::Next
}

fn op_add_imm(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = cpu.state.read(op.rn).wrapping_add(op.imm);
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_sub_imm(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = cpu.state.read(op.rn).wrapping_sub(op.imm);
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_add_reg(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = cpu.state.read(op.rn).wrapping_add(cpu.state.read(op.rm));
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_sub_reg(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = cpu.state.read(op.rn).wrapping_sub(cpu.state.read(op.rm));
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_and_reg(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = cpu.state.read(op.rn) & cpu.state.read(op.rm);
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_orr_reg(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = cpu.state.read(op.rn) | cpu.state.read(op.rm);
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_eor_reg(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = cpu.state.read(op.rn) ^ cpu.state.read(op.rm);
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

/// `BFM`, extract-and-insert-low shape: `imm` = field shift, `imm2` =
/// low mask.
fn op_bfm_lo(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let src = cpu.state.read(op.rn);
    let dst = cpu.state.read(op.rd);
    let field = (src >> op.imm) & op.imm2;
    cpu.state.write(op.rd, (dst & !op.imm2) | field);
    OpOutcome::Next
}

/// `BFM`, insert-at-lsb shape: `imm` = lsb, `imm2` = positioned mask.
fn op_bfm_hi(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let src = cpu.state.read(op.rn);
    let dst = cpu.state.read(op.rd);
    cpu.state
        .write(op.rd, (dst & !op.imm2) | ((src << op.imm) & op.imm2));
    OpOutcome::Next
}

/// `UBFM`, right-shift shape: `imm` = shift, `imm2` = mask.
fn op_ubfm_lsr(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = (cpu.state.read(op.rn) >> op.imm) & op.imm2;
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

/// `UBFM`, left-shift shape: `imm` = shift, `imm2` = pre-shift mask.
fn op_ubfm_lsl(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = (cpu.state.read(op.rn) & op.imm2) << op.imm;
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_ldr(
    cpu: &mut Cpu,
    mem: &mut Memory,
    ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let addr = cpu.addr_single(op.rn, op.mode);
    let v = trace_mem_try!(
        cpu,
        op,
        tc,
        mem.read_u64_memo(ctx, addr, &mut tc.mems[usize::from(op.site)])
    );
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_str(
    cpu: &mut Cpu,
    mem: &mut Memory,
    ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let addr = cpu.addr_single(op.rn, op.mode);
    let v = cpu.state.read(op.rd);
    trace_mem_try!(
        cpu,
        op,
        tc,
        mem.write_u64_memo(ctx, addr, v, &mut tc.mems[usize::from(op.site)])
    );
    smc_check(cpu, mem, op, tc)
}

fn op_ldp(
    cpu: &mut Cpu,
    mem: &mut Memory,
    ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let addr = cpu.addr_pair(op.rn, op.pmode);
    let (v1, v2) = trace_mem_try!(
        cpu,
        op,
        tc,
        mem.read_u64_pair_memo(ctx, addr, &mut tc.mems[usize::from(op.site)])
    );
    cpu.state.write(op.rd, v1);
    cpu.state.write(op.rm, v2);
    OpOutcome::Next
}

fn op_stp(
    cpu: &mut Cpu,
    mem: &mut Memory,
    ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let addr = cpu.addr_pair(op.rn, op.pmode);
    let v1 = cpu.state.read(op.rd);
    let v2 = cpu.state.read(op.rm);
    trace_mem_try!(
        cpu,
        op,
        tc,
        mem.write_u64_pair_memo(ctx, addr, v1, v2, &mut tc.mems[usize::from(op.site)])
    );
    smc_check(cpu, mem, op, tc)
}

fn op_msr(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    if cpu.state.el != El::El1 && op.sr != SysReg::CntvctEl0 {
        cpu.take_exception(ec::TRAPPED_MSR, 0, op.va, None, false);
        tc.exit = Some(Ok(Step::FaultTaken {
            fault: MemFault::Permission {
                va: op.va,
                access: AccessType::Write,
                el: El::El0,
            },
        }));
        return OpOutcome::Exit;
    }
    if op.sr.is_pauth_key() {
        cpu.stats.key_writes += 1;
    }
    let v = cpu.state.read(op.rd);
    cpu.state.set_sysreg(op.sr, v);
    OpOutcome::Next
}

fn op_mrs(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    if cpu.state.el != El::El1 && op.sr != SysReg::CntvctEl0 {
        cpu.take_exception(ec::TRAPPED_MSR, 0, op.va, None, false);
        tc.exit = Some(Ok(Step::FaultTaken {
            fault: MemFault::Permission {
                va: op.va,
                access: AccessType::Read,
                el: El::El0,
            },
        }));
        return OpOutcome::Exit;
    }
    // `MRS CNTVCT_EL0` is fallback-classed and can never join a trace,
    // so this is always a plain system-register read.
    let v = cpu.state.sysreg(op.sr);
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_xpac(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let v = strip_pac(cpu.state.read(op.rd), cpu.tbi_user);
    cpu.state.write(op.rd, v);
    OpOutcome::Next
}

fn op_nop(
    _cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    _op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    OpOutcome::Next
}

fn op_b(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    guard(cpu, op, op.target)
}

fn op_bl(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    cpu.state.write(Reg::LR, op.va + 4);
    guard(cpu, op, op.target)
}

fn op_br(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let actual = cpu.state.read(op.rn);
    guard(cpu, op, actual)
}

fn op_blr(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    // Read the target before the LR write, like the step semantics
    // (BLR LR branches to the *old* LR).
    let actual = cpu.state.read(op.rn);
    cpu.state.write(Reg::LR, op.va + 4);
    guard(cpu, op, actual)
}

fn op_ret(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let actual = cpu.state.read(op.rn);
    guard(cpu, op, actual)
}

fn op_cbz(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let actual = if cpu.state.read(op.rd) == 0 {
        op.target
    } else {
        op.va + 4
    };
    guard(cpu, op, actual)
}

fn op_cbnz(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    _tc: &mut TraceCtx,
) -> OpOutcome {
    let actual = if cpu.state.read(op.rd) != 0 {
        op.target
    } else {
        op.va + 4
    };
    guard(cpu, op, actual)
}

/// The site-memoized PAC sign: architecturally identical to
/// [`Cpu::do_pac`] (same NOP-when-disabled rule, same counter), with the
/// whole computation served from the site when the inputs repeat.
fn site_pac(cpu: &mut Cpu, site: &mut PacSite, key: PacKey, rd: Reg, modifier: u64) {
    if !cpu.state.key_enabled(key.to_pauth_key()) {
        return; // architecturally a NOP when the key is disabled
    }
    let value = cpu.state.read(rd);
    let qkey = cpu.key_for(key);
    let tbi = cpu.tbi_user;
    if site.valid
        && site.value == value
        && site.modifier == modifier
        && site.key == qkey
        && site.tbi == tbi
    {
        cpu.state.write(rd, site.result);
        cpu.stats.pac_signs += 1;
        return;
    }
    let signed = cpu.pac_unit.add_pac(value, modifier, qkey, tbi);
    *site = PacSite {
        valid: true,
        ok: true,
        tbi,
        key: qkey,
        modifier,
        value,
        result: signed,
    };
    cpu.state.write(rd, signed);
    cpu.stats.pac_signs += 1;
}

fn count_auth(cpu: &mut Cpu, ok: bool, class: KeyClass) {
    if ok {
        cpu.stats.pac_auth_ok += 1;
    } else {
        cpu.stats.pac_auth_fail += 1;
        match class {
            KeyClass::Instruction => cpu.stats.pac_auth_fail_instr += 1,
            KeyClass::Data => cpu.stats.pac_auth_fail_data += 1,
        }
    }
}

/// The site-memoized authentication: architecturally identical to
/// [`Cpu::do_aut`] (same disabled-key passthrough, same ok/fail counter
/// classes, same corrupted-pointer result on failure).
fn site_aut(cpu: &mut Cpu, site: &mut PacSite, key: PacKey, rd: Reg, modifier: u64) -> u64 {
    let value = cpu.state.read(rd);
    if !cpu.state.key_enabled(key.to_pauth_key()) {
        return value;
    }
    let qkey = cpu.key_for(key);
    let tbi = cpu.tbi_user;
    let class = class_of(key);
    if site.valid
        && site.value == value
        && site.modifier == modifier
        && site.key == qkey
        && site.tbi == tbi
    {
        count_auth(cpu, site.ok, class);
        cpu.state.write(rd, site.result);
        return site.result;
    }
    let (ok, out) = match cpu.pac_unit.auth_pac(value, modifier, qkey, class, tbi) {
        Ok(stripped) => (true, stripped),
        Err(corrupted) => (false, corrupted),
    };
    count_auth(cpu, ok, class);
    *site = PacSite {
        valid: true,
        ok,
        tbi,
        key: qkey,
        modifier,
        value,
        result: out,
    };
    cpu.state.write(rd, out);
    out
}

/// `PACxx` register form and `PACIA1716`-style hint form (key alias,
/// value register and modifier register pre-resolved by [`make_op`]).
fn op_pac(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let modifier = cpu.state.read(op.rn);
    site_pac(
        cpu,
        &mut tc.sites[usize::from(op.site)],
        op.key,
        op.rd,
        modifier,
    );
    OpOutcome::Next
}

/// `AUTxx` register form and `AUTIA1716`-style hint form.
fn op_aut(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let modifier = cpu.state.read(op.rn);
    site_aut(
        cpu,
        &mut tc.sites[usize::from(op.site)],
        op.key,
        op.rd,
        modifier,
    );
    OpOutcome::Next
}

fn op_pac_sp(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let modifier = cpu.state.sp();
    site_pac(
        cpu,
        &mut tc.sites[usize::from(op.site)],
        op.key,
        op.rd,
        modifier,
    );
    OpOutcome::Next
}

fn op_aut_sp(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let modifier = cpu.state.sp();
    site_aut(
        cpu,
        &mut tc.sites[usize::from(op.site)],
        op.key,
        op.rd,
        modifier,
    );
    OpOutcome::Next
}

fn op_reta(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let modifier = cpu.state.sp();
    let actual = site_aut(
        cpu,
        &mut tc.sites[usize::from(op.site)],
        op.key,
        op.rd,
        modifier,
    );
    guard(cpu, op, actual)
}

fn op_blra(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let modifier = cpu.state.read(op.rm);
    // Authenticate first, then write LR — step-semantics order.
    let actual = site_aut(
        cpu,
        &mut tc.sites[usize::from(op.site)],
        op.key,
        op.rn,
        modifier,
    );
    cpu.state.write(Reg::LR, op.va + 4);
    guard(cpu, op, actual)
}

fn op_bra(
    cpu: &mut Cpu,
    _mem: &mut Memory,
    _ctx: &TranslationCtx,
    op: &TraceOp,
    tc: &mut TraceCtx,
) -> OpOutcome {
    let modifier = cpu.state.read(op.rm);
    let actual = site_aut(
        cpu,
        &mut tc.sites[usize::from(op.site)],
        op.key,
        op.rn,
        modifier,
    );
    guard(cpu, op, actual)
}
