//! The zero-copy observability plane: periodic stat-delta windows over a
//! lock-free single-producer/single-consumer ring.
//!
//! The simulator's reporting has always been end-of-run snapshots —
//! [`CpuStats`] totals merged when a tenant finishes. This module adds the
//! *time axis*: an executor accumulates per-op [`CpuStats::delta_since`]
//! deltas into a [`StatWindow`] and seals one window every
//! [`TelemetryConfig::window_ops`] ops into a [`TelemetryRing`] shared with
//! whoever drains it (the fleet driver, a live dashboard, a load-aware
//! scheduler). Three properties carry the design:
//!
//! * **Observed execution is bit-identical.** The plane only *reads*
//!   deltas the executor already computes for its totals; it never
//!   touches simulated state, draws from an RNG, or reorders anything.
//!   The same A/B contract as `fast_caches`/`block_engine`/`trace_engine`
//!   applies, and `perfcheck --telemetry` gates it.
//! * **Lossless accounting under overflow.** [`TelemetryRing::try_push`]
//!   refuses when full rather than dropping or blocking; the emitter then
//!   *coalesces* — it keeps accumulating into its pending window and
//!   retries at the next boundary. Memory stays bounded by the ring, and
//!   the sum of all drained windows plus the final
//!   [`TelemetryEmitter::flush`] equals the end-of-run totals exactly.
//! * **Safe lock-free SPSC.** The whole crate forbids `unsafe`, so the
//!   ring is a `Vec<AtomicU64>` of fixed-width word-encoded windows with a
//!   monotonic producer tail (Release-published after the slot words are
//!   written) and a monotonic consumer head (Release-published after the
//!   slot words are read). Acquire loads on the opposite counter give the
//!   usual SPSC happens-before edges in both directions.
//!
//! The word codec ([`StatWindow::to_words`]/[`StatWindow::from_words`])
//! destructures [`CpuStats`] exhaustively, so adding a counter without
//! teaching the telemetry plane about it is a *compile* error, not a
//! silently truncated time series.

use crate::CpuStats;
use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of `u64` words a [`CpuStats`] occupies in the slot encoding —
/// one per counter field.
pub const STAT_WORDS: usize = 22;

/// Number of `u64` words one encoded [`StatWindow`] occupies: the five
/// window header fields plus [`STAT_WORDS`].
pub const WINDOW_WORDS: usize = 5 + STAT_WORDS;

/// Emission cadence and ring sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Ops accumulated per sealed window (the time-series resolution).
    pub window_ops: u64,
    /// Ring capacity in windows. Overflow coalesces (see the module
    /// docs), so this bounds memory and drain latency, not correctness.
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window_ops: 16,
            capacity: 256,
        }
    }
}

/// One sealed observation window: the stat deltas a tenant accumulated
/// over (up to) [`TelemetryConfig::window_ops`] consecutive ops.
///
/// `ops` can exceed the configured cadence when the ring was full at a
/// boundary and the emitter coalesced; the accounting stays exact either
/// way. All fields are deltas over the window, not running totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatWindow {
    /// Producer id from [`TelemetryRing::register`] (the fleet driver
    /// registers tenants in plan order, so this indexes the plan).
    pub tenant: u64,
    /// Position of this window in its tenant's series (0-based, dense:
    /// seq `n` is the `n`-th window the tenant emitted).
    pub seq: u64,
    /// Ops folded into the window.
    pub ops: u64,
    /// Syscalls served by those ops.
    pub syscalls: u64,
    /// Simulated cycles consumed by those ops.
    pub cycles: u64,
    /// Full counter deltas over the window (block/trace hit rates, TLB
    /// and icache hits, PAC memo hits, PAC failures, IPIs, ...).
    pub stats: CpuStats,
}

impl StatWindow {
    /// A fresh, empty window for `tenant` at series position `seq`.
    pub fn new(tenant: u64, seq: u64) -> StatWindow {
        StatWindow {
            tenant,
            seq,
            ..StatWindow::default()
        }
    }

    /// Folds one op's attribution into the window.
    pub fn record(&mut self, syscalls: u64, cycles: u64, delta: &CpuStats) {
        self.ops += 1;
        self.syscalls += syscalls;
        self.cycles += cycles;
        self.stats.merge(delta);
    }

    /// The slot encoding. The [`CpuStats`] destructuring is exhaustive on
    /// purpose: a new counter field fails to compile here until the codec
    /// (and therefore every drained time series) carries it.
    pub fn to_words(&self) -> [u64; WINDOW_WORDS] {
        let CpuStats {
            instructions,
            pac_signs,
            pac_auth_ok,
            pac_auth_fail,
            pac_auth_fail_instr,
            pac_auth_fail_data,
            key_writes,
            exceptions,
            tlb_hits,
            tlb_misses,
            icache_hits,
            icache_misses,
            pac_memo_hits,
            pac_memo_misses,
            ipis,
            block_hits,
            block_misses,
            block_invalidations,
            chain_follows,
            trace_hits,
            trace_misses,
            trace_invalidations,
        } = self.stats;
        [
            self.tenant,
            self.seq,
            self.ops,
            self.syscalls,
            self.cycles,
            instructions,
            pac_signs,
            pac_auth_ok,
            pac_auth_fail,
            pac_auth_fail_instr,
            pac_auth_fail_data,
            key_writes,
            exceptions,
            tlb_hits,
            tlb_misses,
            icache_hits,
            icache_misses,
            pac_memo_hits,
            pac_memo_misses,
            ipis,
            block_hits,
            block_misses,
            block_invalidations,
            chain_follows,
            trace_hits,
            trace_misses,
            trace_invalidations,
        ]
    }

    /// Decodes a slot written by [`StatWindow::to_words`].
    pub fn from_words(words: &[u64; WINDOW_WORDS]) -> StatWindow {
        StatWindow {
            tenant: words[0],
            seq: words[1],
            ops: words[2],
            syscalls: words[3],
            cycles: words[4],
            stats: CpuStats {
                instructions: words[5],
                pac_signs: words[6],
                pac_auth_ok: words[7],
                pac_auth_fail: words[8],
                pac_auth_fail_instr: words[9],
                pac_auth_fail_data: words[10],
                key_writes: words[11],
                exceptions: words[12],
                tlb_hits: words[13],
                tlb_misses: words[14],
                icache_hits: words[15],
                icache_misses: words[16],
                pac_memo_hits: words[17],
                pac_memo_misses: words[18],
                ipis: words[19],
                block_hits: words[20],
                block_misses: words[21],
                block_invalidations: words[22],
                chain_follows: words[23],
                trace_hits: words[24],
                trace_misses: words[25],
                trace_invalidations: words[26],
            },
        }
    }
}

/// The lock-free SPSC window ring one shard shares between its serve loop
/// (producer) and its drainer (consumer).
///
/// Single-producer / single-consumer is the contract, not an enforcement:
/// within a fleet shard every tenant's emitter runs on the shard's one
/// serve thread, and the drain runs on whichever single thread owns the
/// consumer side. Head and tail are monotonic u64 counters; slot `i` of a
/// window at position `p` lives at word `(p % capacity) * WINDOW_WORDS +
/// i`.
pub struct TelemetryRing {
    cfg: TelemetryConfig,
    slots: Vec<AtomicU64>,
    /// Consumer cursor: next window position to read.
    head: AtomicU64,
    /// Producer cursor: next window position to write.
    tail: AtomicU64,
    /// Monotonic producer-id allocator for [`TelemetryRing::register`].
    tenants: AtomicU64,
}

impl fmt::Debug for TelemetryRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryRing")
            .field("cfg", &self.cfg)
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .field("tenants", &self.tenants.load(Ordering::Relaxed))
            .finish()
    }
}

impl TelemetryRing {
    /// An empty ring sized by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity or a zero window cadence.
    pub fn new(cfg: TelemetryConfig) -> TelemetryRing {
        assert!(cfg.capacity > 0, "ring capacity must be positive");
        assert!(cfg.window_ops > 0, "window cadence must be positive");
        let mut slots = Vec::with_capacity(cfg.capacity * WINDOW_WORDS);
        slots.resize_with(cfg.capacity * WINDOW_WORDS, || AtomicU64::new(0));
        TelemetryRing {
            cfg,
            slots,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            tenants: AtomicU64::new(0),
        }
    }

    /// The sizing/cadence the ring was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Capacity in windows.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Windows currently buffered (racy by nature; exact when quiescent).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring is empty (same caveat as [`TelemetryRing::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocates the next producer id. The fleet driver registers tenants
    /// in plan order, so ids index the plan's tenant list on that shard.
    pub fn register(&self) -> u64 {
        self.tenants.fetch_add(1, Ordering::Relaxed)
    }

    /// Producer side: publishes one window unless the ring is full.
    /// Returns `false` (and writes nothing) when full — the caller keeps
    /// accumulating and retries, so nothing is ever silently dropped.
    pub fn try_push(&self, window: &StatWindow) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        // Acquire on head: the consumer Release-stored it *after* reading
        // the slot we are about to overwrite, so our writes cannot race
        // its reads.
        let head = self.head.load(Ordering::Acquire);
        if tail - head >= self.cfg.capacity as u64 {
            return false;
        }
        let base = (tail % self.cfg.capacity as u64) as usize * WINDOW_WORDS;
        for (i, word) in window.to_words().iter().enumerate() {
            self.slots[base + i].store(*word, Ordering::Relaxed);
        }
        // Release on tail publishes the slot words to a consumer that
        // Acquire-loads the new tail.
        self.tail.store(tail + 1, Ordering::Release);
        true
    }

    /// Consumer side: takes the oldest buffered window, if any.
    pub fn pop(&self) -> Option<StatWindow> {
        let head = self.head.load(Ordering::Relaxed);
        // Acquire on tail pairs with the producer's Release: once we see
        // tail > head, the slot words at head are fully written.
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let base = (head % self.cfg.capacity as u64) as usize * WINDOW_WORDS;
        let mut words = [0u64; WINDOW_WORDS];
        for (i, word) in words.iter_mut().enumerate() {
            *word = self.slots[base + i].load(Ordering::Relaxed);
        }
        // Release on head hands the slot back to the producer.
        self.head.store(head + 1, Ordering::Release);
        Some(StatWindow::from_words(&words))
    }

    /// Consumer side: drains every currently buffered window into `out`.
    pub fn drain_into(&self, out: &mut Vec<StatWindow>) {
        while let Some(window) = self.pop() {
            out.push(window);
        }
    }
}

/// The producer half a [`crate::CpuStats`]-attributing executor holds:
/// accumulates per-op deltas, seals windows on cadence, and coalesces
/// across full-ring boundaries.
#[derive(Debug)]
pub struct TelemetryEmitter {
    ring: Arc<TelemetryRing>,
    window_ops: u64,
    pending: StatWindow,
    /// Window boundaries that found the ring full and folded onward —
    /// observability for sizing, not a loss count (nothing is dropped).
    coalesced: u64,
}

impl TelemetryEmitter {
    /// Registers a new producer on `ring` and starts its first window.
    pub fn new(ring: Arc<TelemetryRing>) -> TelemetryEmitter {
        let tenant = ring.register();
        let window_ops = ring.config().window_ops;
        TelemetryEmitter {
            ring,
            window_ops,
            pending: StatWindow::new(tenant, 0),
            coalesced: 0,
        }
    }

    /// This emitter's producer id on the ring.
    pub fn tenant(&self) -> u64 {
        self.pending.tenant
    }

    /// Boundaries at which a full ring forced coalescing so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Folds one op's attribution in; seals and publishes the pending
    /// window when the cadence is reached (coalescing if the ring is
    /// full).
    pub fn record(&mut self, syscalls: u64, cycles: u64, delta: &CpuStats) {
        self.pending.record(syscalls, cycles, delta);
        if self.pending.ops >= self.window_ops {
            if self.ring.try_push(&self.pending) {
                self.pending = StatWindow::new(self.pending.tenant, self.pending.seq + 1);
            } else if self.pending.ops % self.window_ops == 0 {
                // Count distinct full boundaries, not the per-op retries
                // between them — this is a ring-sizing signal.
                self.coalesced += 1;
            }
        }
    }

    /// End-of-run flush: returns the final partial window directly
    /// (bypassing the ring, so delivery cannot fail) and resets. `None`
    /// when every recorded op is already published.
    pub fn flush(&mut self) -> Option<StatWindow> {
        if self.pending.ops == 0 {
            return None;
        }
        let out = self.pending;
        self.pending = StatWindow::new(out.tenant, out.seq + 1);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stats value with every field distinct — the completeness probe.
    fn distinct_stats(base: u64) -> CpuStats {
        let mut n = base;
        let mut next = || {
            n += 1;
            n
        };
        CpuStats {
            instructions: next(),
            pac_signs: next(),
            pac_auth_ok: next(),
            pac_auth_fail: next(),
            pac_auth_fail_instr: next(),
            pac_auth_fail_data: next(),
            key_writes: next(),
            exceptions: next(),
            tlb_hits: next(),
            tlb_misses: next(),
            icache_hits: next(),
            icache_misses: next(),
            pac_memo_hits: next(),
            pac_memo_misses: next(),
            ipis: next(),
            block_hits: next(),
            block_misses: next(),
            block_invalidations: next(),
            chain_follows: next(),
            trace_hits: next(),
            trace_misses: next(),
            trace_invalidations: next(),
        }
    }

    fn window(tenant: u64, seq: u64, base: u64) -> StatWindow {
        StatWindow {
            tenant,
            seq,
            ops: base + 100,
            syscalls: base + 200,
            cycles: base + 300,
            stats: distinct_stats(base * 1000),
        }
    }

    #[test]
    fn codec_roundtrips_and_covers_every_field() {
        let w = window(7, 9, 3);
        let words = w.to_words();
        assert_eq!(StatWindow::from_words(&words), w);
        // Every field value is distinct, so a codec that dropped or
        // duplicated a field would repeat a word here.
        let mut sorted = words.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), WINDOW_WORDS, "codec collapsed a field");
    }

    #[test]
    fn push_pop_roundtrip_in_order() {
        let ring = TelemetryRing::new(TelemetryConfig {
            window_ops: 4,
            capacity: 8,
        });
        for i in 0..5 {
            assert!(ring.try_push(&window(0, i, i + 1)));
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(window(0, i, i + 1)));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_refuses_and_wraps_after_drain() {
        let ring = TelemetryRing::new(TelemetryConfig {
            window_ops: 4,
            capacity: 2,
        });
        assert!(ring.try_push(&window(0, 0, 1)));
        assert!(ring.try_push(&window(0, 1, 2)));
        assert!(!ring.try_push(&window(0, 2, 3)), "full ring must refuse");
        assert_eq!(ring.pop(), Some(window(0, 0, 1)));
        assert!(ring.try_push(&window(0, 2, 3)), "freed slot is reusable");
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out, vec![window(0, 1, 2), window(0, 2, 3)]);
    }

    #[test]
    fn emitter_seals_on_cadence_and_coalesces_when_full() {
        let ring = Arc::new(TelemetryRing::new(TelemetryConfig {
            window_ops: 2,
            capacity: 1,
        }));
        let mut em = TelemetryEmitter::new(Arc::clone(&ring));
        let delta = distinct_stats(0);
        // First boundary publishes; second finds the ring full and
        // coalesces; flush returns the remainder.
        for _ in 0..5 {
            em.record(1, 10, &delta);
        }
        assert_eq!(em.coalesced(), 1);
        let first = ring.pop().expect("first window published");
        assert_eq!((first.seq, first.ops), (0, 2));
        let rest = em.flush().expect("pending remainder");
        assert_eq!((rest.seq, rest.ops), (1, 3), "coalesced window kept all");
        assert_eq!(first.ops + rest.ops, 5, "no op lost");
        let mut sum = first.stats;
        sum.merge(&rest.stats);
        let mut expect = CpuStats::default();
        for _ in 0..5 {
            expect.merge(&delta);
        }
        assert_eq!(sum, expect, "window sums reproduce the totals exactly");
        assert_eq!(em.flush(), None, "flush drains the pending window");
    }

    #[test]
    fn registration_ids_are_dense_and_ordered() {
        let ring = TelemetryRing::new(TelemetryConfig::default());
        assert_eq!(ring.register(), 0);
        assert_eq!(ring.register(), 1);
        assert_eq!(ring.register(), 2);
    }
}
