//! Camouflage assembled: the paper's contribution as one machine.
//!
//! [`Machine`] wraps the whole stack — QARMA-backed PAuth core, VMSA
//! memory with hypervisor stage 2, bootloader-generated keys in XOM, and
//! the instrumented kernel — behind the configuration surface the paper
//! evaluates:
//!
//! * protection level: none / backward-edge / full (§6.1);
//! * backward-edge scheme: SP-only (Clang), PARTS, Camouflage (Figure 2);
//! * §5.5 backward-compatible builds and pre-ARMv8.3 cores.
//!
//! # Example
//!
//! ```
//! use camo_core::Machine;
//!
//! let mut machine = Machine::protected()?;
//! let out = machine.kernel_mut().syscall(172, 0)?; // getpid
//! assert!(out.fault.is_none());
//! # Ok::<(), camo_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use camo_codegen::{CfiScheme, ProtectionLevel};
pub use camo_kernel::{ExecOutcome, Kernel, KernelConfig, KernelError};

/// A booted Camouflage machine.
#[derive(Debug)]
pub struct Machine {
    kernel: Kernel,
}

impl Machine {
    /// Boots with full Camouflage protection.
    ///
    /// # Errors
    ///
    /// Propagates any [`KernelError`] raised during boot.
    pub fn protected() -> Result<Machine, KernelError> {
        Machine::with_config(KernelConfig::default())
    }

    /// Boots an unprotected baseline machine.
    ///
    /// # Errors
    ///
    /// Propagates any [`KernelError`] raised during boot.
    pub fn baseline() -> Result<Machine, KernelError> {
        Machine::with_protection(ProtectionLevel::None)
    }

    /// Boots at the given protection level (Camouflage scheme).
    ///
    /// # Errors
    ///
    /// Propagates any [`KernelError`] raised during boot.
    pub fn with_protection(level: ProtectionLevel) -> Result<Machine, KernelError> {
        Machine::with_config(KernelConfig::with_protection(level))
    }

    /// Boots a full-protection kernel with a specific backward-edge scheme
    /// (the Figure 2 / replay-matrix contenders).
    ///
    /// # Errors
    ///
    /// Propagates any [`KernelError`] raised during boot.
    pub fn with_scheme(scheme: CfiScheme) -> Result<Machine, KernelError> {
        let mut cfg = KernelConfig::default();
        cfg.scheme_override = Some(scheme);
        Machine::with_config(cfg)
    }

    /// Boots from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates any [`KernelError`] raised during boot.
    pub fn with_config(cfg: KernelConfig) -> Result<Machine, KernelError> {
        Ok(Machine {
            kernel: Kernel::boot(cfg)?,
        })
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Consumes the machine, returning the kernel.
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }

    /// The protection level this machine runs at.
    pub fn protection(&self) -> ProtectionLevel {
        self.kernel.config().protection
    }

    /// The backward-edge scheme in effect.
    pub fn scheme(&self) -> CfiScheme {
        self.kernel.codegen_config().scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_machine_uses_camouflage_scheme() {
        let m = Machine::protected().unwrap();
        assert_eq!(m.protection(), ProtectionLevel::Full);
        assert_eq!(m.scheme(), CfiScheme::Camouflage);
    }

    #[test]
    fn baseline_machine_is_uninstrumented() {
        let m = Machine::baseline().unwrap();
        assert_eq!(m.protection(), ProtectionLevel::None);
        assert_eq!(m.scheme(), CfiScheme::None);
    }

    #[test]
    fn scheme_override_boots_parts_and_sp_only() {
        for scheme in [CfiScheme::SpOnly, CfiScheme::Parts] {
            let m = Machine::with_scheme(scheme).unwrap();
            assert_eq!(m.scheme(), scheme, "{scheme}");
        }
    }

    #[test]
    fn syscalls_work_on_every_machine_flavour() {
        for level in ProtectionLevel::ALL {
            let mut m = Machine::with_protection(level).unwrap();
            let out = m.kernel_mut().syscall(172, 0).unwrap();
            assert!(out.fault.is_none(), "{level}");
        }
    }

    #[test]
    fn fast_caches_are_architecturally_invisible() {
        // The whole point of the fast-path engine: booting and running with
        // the caches disabled must produce bit-identical architectural
        // results — same return values, same cycle counts, same instruction
        // counts — for every protection level.
        let run = |fast_caches: bool, level: ProtectionLevel| {
            let mut cfg = KernelConfig::with_protection(level);
            cfg.fast_caches = fast_caches;
            let mut m = Machine::with_config(cfg).unwrap();
            let mut log = Vec::new();
            for nr in [172u64, 63, 64, 57] {
                let out = m.kernel_mut().syscall(nr, 7).unwrap();
                log.push((out.x0, out.cycles, out.instructions, out.fault));
            }
            log
        };
        for level in ProtectionLevel::ALL {
            assert_eq!(run(true, level), run(false, level), "{level}");
        }
    }

    #[test]
    fn block_engine_is_architecturally_invisible() {
        // Same contract as the fast caches, on the other knob: booting
        // with the block translation engine off must produce bit-identical
        // architectural results — return values, cycles, instructions,
        // faults — and identical architectural counters, for every
        // protection level.
        let run = |block_engine: bool, level: ProtectionLevel| {
            let mut cfg = KernelConfig::with_protection(level);
            cfg.block_engine = block_engine;
            let mut m = Machine::with_config(cfg).unwrap();
            let mut log = Vec::new();
            for nr in [172u64, 63, 64, 57] {
                let out = m.kernel_mut().syscall(nr, 7).unwrap();
                log.push((out.x0, out.cycles, out.instructions, out.fault));
            }
            (log, m.kernel().cpu().stats())
        };
        for level in ProtectionLevel::ALL {
            let (log_on, stats_on) = run(true, level);
            let (log_off, stats_off) = run(false, level);
            assert_eq!(log_on, log_off, "{level}");
            assert!(
                stats_on.arch_eq(&stats_off),
                "{level}: architectural counters diverged: {stats_on:?} vs {stats_off:?}"
            );
            assert!(
                stats_on.block_hits > 0,
                "{level}: the engine actually served blocks"
            );
            assert_eq!(stats_off.block_hits, 0, "{level}: engine off is off");
        }
    }

    #[test]
    fn trace_engine_is_architecturally_invisible() {
        // The third knob: the trace tier (hot chains flattened into
        // guard-checked traces inside the block engine) must also be
        // architecturally invisible. Enough repetitions of the syscall
        // battery to push the kernel's hot paths past the promotion
        // threshold.
        let run = |trace_engine: bool, level: ProtectionLevel| {
            let mut cfg = KernelConfig::with_protection(level);
            cfg.trace_engine = trace_engine;
            let mut m = Machine::with_config(cfg).unwrap();
            let mut log = Vec::new();
            for round in 0..12u64 {
                for nr in [172u64, 63, 64, 57] {
                    let out = m.kernel_mut().syscall(nr, 7 + round).unwrap();
                    log.push((out.x0, out.cycles, out.instructions, out.fault));
                }
            }
            (log, m.kernel().cpu().stats())
        };
        for level in ProtectionLevel::ALL {
            let (log_on, stats_on) = run(true, level);
            let (log_off, stats_off) = run(false, level);
            assert_eq!(log_on, log_off, "{level}");
            assert!(
                stats_on.arch_eq(&stats_off),
                "{level}: architectural counters diverged: {stats_on:?} vs {stats_off:?}"
            );
            assert_eq!(
                (stats_off.trace_hits, stats_off.trace_misses),
                (0, 0),
                "{level}: tier off is off"
            );
        }
    }
}
