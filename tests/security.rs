//! Workspace-level security regression: the §6.2 matrix holds.

use camouflage::attacks::{brute, oracle, pointer, rop};
use camouflage::core::{CfiScheme, ProtectionLevel};

#[test]
fn rop_and_replay_claims() {
    assert!(!rop::injection_attack(ProtectionLevel::None).blocked);
    assert!(rop::injection_attack(ProtectionLevel::Full).blocked);
    assert!(!rop::replay_same_sp_cross_function(CfiScheme::SpOnly).blocked);
    assert!(rop::replay_same_sp_cross_function(CfiScheme::Camouflage).blocked);
    assert!(!rop::replay_cross_thread_same_function(CfiScheme::Parts).blocked);
    assert!(rop::replay_cross_thread_same_function(CfiScheme::Camouflage).blocked);
}

#[test]
fn forward_edge_and_dfi_claims() {
    assert!(pointer::forge_f_ops(ProtectionLevel::Full).blocked);
    assert!(!pointer::forge_f_ops(ProtectionLevel::BackwardEdge).blocked);
    assert!(pointer::forge_work_callback(ProtectionLevel::Full).blocked);
    assert!(pointer::memcpy_compliance_break().blocked);
    assert!(pointer::resigned_copy_works());
}

#[test]
fn key_confidentiality_claims() {
    assert!(oracle::read_key_setter_memory().blocked);
    assert!(oracle::overwrite_key_setter_memory().blocked);
    assert!(oracle::load_key_reading_module().blocked);
    assert!(oracle::load_sctlr_writing_module().blocked);
    assert!(oracle::mrs_keys_from_el0().blocked);
    assert!(oracle::user_keys_differ_from_kernel_keys());
}

#[test]
fn brute_force_is_rate_limited() {
    let r = brute::brute_force_pac(6);
    assert!(r.blocked, "{}", r.detail);
}
