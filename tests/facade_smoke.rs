//! Facade smoke test: every `camouflage::*` re-export resolves and a
//! minimal protected machine boots and serves a syscall.
//!
//! This is the tier-0 check for the workspace wiring itself — if a crate
//! is dropped from the facade or a manifest edge goes missing, this file
//! stops compiling before anything subtler breaks.

use camouflage::analysis::verify_image;
use camouflage::attacks::security_matrix;
use camouflage::boot::{Bootloader, KERNEL_TEXT_BASE};
use camouflage::codegen::CfiScheme;
use camouflage::core::{Machine, ProtectionLevel};
use camouflage::cpu::CpuStats;
use camouflage::isa::{decode, encode, Insn};
use camouflage::kernel::KernelConfig;
use camouflage::lmbench::workloads;
use camouflage::mem::PointerLayout;
use camouflage::qarma::QarmaKey;

/// One symbol from each re-exported crate, so a missing facade edge is a
/// compile error pointing at the exact crate.
#[test]
fn every_reexport_resolves() {
    // isa: NOP must round-trip through the codec.
    let word = encode(&Insn::Nop);
    assert_eq!(decode(word), Some(Insn::Nop));

    // qarma: keys are value types with visible halves.
    let key = QarmaKey::new(1, 2);
    assert_eq!((key.w0, key.k0), (1, 2));

    // mem: the kernel layout leaves 15 PAC bits (§5.4 / Table 2).
    assert_eq!(PointerLayout::kernel().pac_bits(), 15);

    // codegen + boot: constants and types are reachable.
    assert_eq!(CfiScheme::Camouflage.to_string(), "camouflage");
    assert!(KERNEL_TEXT_BASE >= 0xffff_0000_0000_0000);
    let _: fn(u64) -> Bootloader = Bootloader::new;

    // cpu: stats start from zero.
    assert_eq!(CpuStats::default().pac_signs, 0);

    // analysis, attacks, lmbench: entry points exist with the expected
    // shapes (invoked for real by the tier-1 suites).
    let _: fn(&[u32]) -> Vec<camouflage::analysis::Violation> = verify_image;
    let _: fn() -> Vec<camouflage::attacks::AttackResult> = security_matrix;
    assert!(!workloads().is_empty());
}

#[test]
fn minimal_machine_boots_and_serves_a_syscall() {
    let mut machine = Machine::protected().expect("protected machine boots");
    assert_eq!(machine.protection(), ProtectionLevel::Full);

    let kernel = machine.kernel_mut();
    let out = kernel.syscall(172, 0).expect("getpid");
    assert!(out.fault.is_none(), "getpid must not fault");
    assert!(out.cycles > 0, "syscalls cost simulated cycles");
    assert!(
        kernel.cpu().stats().pac_auth_ok > 0,
        "a protected syscall authenticates at least one pointer"
    );
}

#[test]
fn baseline_machine_boots_without_pauth() {
    let mut machine = Machine::with_config(KernelConfig::with_protection(ProtectionLevel::None))
        .expect("baseline machine boots");
    let out = machine.kernel_mut().syscall(172, 0).expect("getpid");
    assert!(out.fault.is_none());
    assert_eq!(machine.kernel_mut().cpu().stats().pac_signs, 0);
}
