//! Cross-crate integration: boot → syscalls → scheduling → modules →
//! workqueues, across every protection level.

use camouflage::codegen::{FunctionBuilder, Program, StaticPointerTable};
use camouflage::core::{Machine, ProtectionLevel};
use camouflage::isa::{Insn, PacKey, Reg};
use camouflage::kernel::{layout, FileKind, KernelEvent};

#[test]
fn every_protection_level_survives_a_busy_day() {
    for level in ProtectionLevel::ALL {
        let mut machine = Machine::with_protection(level).expect("boot");
        let kernel = machine.kernel_mut();

        // A burst of different syscalls.
        for (nr, arg) in [(172, 0), (63, 3), (64, 3), (79, 0), (72, 3), (56, 0)] {
            let out = kernel.syscall(nr, arg).expect("syscall");
            assert!(out.fault.is_none(), "{level}: syscall {nr} faulted");
        }

        // Spawn and ping-pong between tasks.
        let a = kernel.spawn("a").expect("spawn");
        let b = kernel.spawn("b").expect("spawn");
        for _ in 0..4 {
            kernel.context_switch(a, b).expect("switch");
            kernel.context_switch(b, a).expect("switch");
        }

        // Work queue round trip.
        let work = kernel.init_work("dev_poll").expect("init_work");
        let out = kernel.run_work(work).expect("run_work");
        assert!(out.fault.is_none(), "{level}");

        // Nothing counted as an attack.
        assert_eq!(kernel.pac_failures(), 0, "{level}");
        assert!(
            !kernel
                .events()
                .iter()
                .any(|e| matches!(e, KernelEvent::TaskKilled { .. })),
            "{level}"
        );
    }
}

#[test]
fn syscalls_from_different_tasks_use_their_own_kernel_stacks() {
    let mut machine = Machine::protected().expect("boot");
    let kernel = machine.kernel_mut();
    let a = kernel.spawn("a").expect("spawn");
    let b = kernel.spawn("b").expect("spawn");
    let out_a = kernel.run_user(a, "stub", 2, 172, 0).expect("run a");
    let out_b = kernel.run_user(b, "stub", 2, 172, 0).expect("run b");
    assert!(out_a.fault.is_none() && out_b.fault.is_none());
    assert_eq!(out_a.x0, u64::from(a));
    assert_eq!(out_b.x0, u64::from(b));
}

#[test]
fn module_with_static_pointer_table_signs_at_load() {
    let mut machine = Machine::protected().expect("boot");
    let kernel = machine.kernel_mut();
    let cfg = kernel.codegen_config();

    // The module's "DECLARE_WORK": a pointer slot in kernel data that must
    // be signed at load time (§4.6).
    let work = camouflage::kernel::work_heap_base() + 0x400;
    let target = kernel.symbol("dev_poll");
    let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
    kernel
        .mem_mut()
        .write_u64(&ctx, work + u64::from(layout::work_struct::FUNC), target)
        .expect("work heap mapped");

    let mut statics = StaticPointerTable::new();
    statics.push(camouflage::codegen::StaticPointerEntry {
        location: work + u64::from(layout::work_struct::FUNC),
        key: PacKey::IA,
        type_const: layout::type_consts::WORK_FUNC,
        field_offset: layout::work_struct::FUNC,
    });

    let mut p = Program::new(cfg);
    let mut f = FunctionBuilder::new("mod_init", cfg);
    f.ins(Insn::Movz {
        rd: Reg::x(0),
        imm16: 7,
        shift: 0,
    });
    p.push(f.build());
    kernel.load_module(p, &statics).expect("module loads");

    // The slot now authenticates: run the work item through the kernel's
    // authenticated dispatcher.
    let out = kernel.run_work(work).expect("run_work");
    assert!(out.fault.is_none(), "statically-declared work must run");

    // A raw (unsigned) twin next to it fails.
    let raw = camouflage::kernel::work_heap_base() + 0x440;
    kernel
        .mem_mut()
        .write_u64(&ctx, raw + u64::from(layout::work_struct::FUNC), target)
        .expect("mapped");
    let out = kernel.run_work(raw).expect("below threshold");
    assert!(out.fault.expect("must fault").pac_failure);
}

#[test]
fn open_close_allocates_fresh_signed_files() {
    let mut machine = Machine::protected().expect("boot");
    let kernel = machine.kernel_mut();
    let before = kernel.cpu().stats().pac_signs;
    let out = kernel.syscall(56, 0).expect("open");
    assert!(out.fault.is_none());
    let fd = out.x0;
    assert!(fd >= 4, "fresh fd after the pre-opened one, got {fd}");
    assert!(
        kernel.cpu().stats().pac_signs > before,
        "open signed the new f_ops in kernel code"
    );
    // The new file is immediately usable through the authenticated path.
    let out = kernel.syscall(63, fd).expect("read new fd");
    assert!(out.fault.is_none());
}

#[test]
fn alloc_file_kinds_share_rodata_tables() {
    let mut machine = Machine::protected().expect("boot");
    let kernel = machine.kernel_mut();
    for kind in FileKind::ALL {
        let file = kernel.alloc_file(kind).expect("alloc");
        // Every allocated file authenticates against its rodata table.
        let out = kernel
            .kexec(kernel.symbol("sys_read"), &[file, 0, 0])
            .expect("kexec");
        assert!(out.fault.is_none(), "{kind:?}");
    }
}
