//! §5.5 backward compatibility: one protected kernel binary, two CPUs.
//!
//! The compat build uses only the hint-space (`*1716`) PAuth forms, which
//! execute as NOPs on pre-ARMv8.3 cores. The same binary must (a) run
//! unprotected-but-correct on an old core and (b) deliver real protection
//! on a new core.

use camouflage::core::{Machine, ProtectionLevel};
use camouflage::kernel::{layout, KernelConfig};

fn compat_config(pauth_hw: bool) -> KernelConfig {
    let mut cfg = KernelConfig::with_protection(ProtectionLevel::Full);
    cfg.compat_v80 = true;
    cfg.pauth_hw = pauth_hw;
    cfg
}

#[test]
fn compat_kernel_runs_on_pre_v83_core() {
    let mut machine = Machine::with_config(compat_config(false)).expect("boot");
    let kernel = machine.kernel_mut();
    // Everything works — the PAuth hints are NOPs.
    for (nr, arg) in [(172, 0), (63, 3), (56, 0)] {
        let out = kernel.syscall(nr, arg).expect("syscall");
        assert!(out.fault.is_none(), "syscall {nr}");
    }
    // And no PAC was ever computed.
    assert_eq!(kernel.cpu().stats().pac_signs, 0);
    assert_eq!(kernel.cpu().stats().pac_auth_ok, 0);
}

#[test]
fn compat_kernel_protects_on_v83_core() {
    let mut machine = Machine::with_config(compat_config(true)).expect("boot");
    let kernel = machine.kernel_mut();
    let out = kernel.syscall(63, 3).expect("read");
    assert!(out.fault.is_none());
    assert!(
        kernel.cpu().stats().pac_auth_ok > 0,
        "1716 forms authenticate"
    );

    // A forged work callback is caught, same as the native build.
    let work = kernel.init_work("dev_poll").expect("init_work");
    let target = kernel.symbol("dev_read");
    let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
    kernel
        .mem_mut()
        .write_u64(&ctx, work + u64::from(layout::work_struct::FUNC), target)
        .expect("writable");
    let out = kernel.run_work(work).expect("below threshold");
    assert!(out.fault.expect("fault").pac_failure);
}

#[test]
fn compat_build_costs_more_than_native_on_v83() {
    // The register shuffles around the *1716 forms cost extra cycles —
    // the price of one binary for two generations.
    let mut native = Machine::protected().expect("boot");
    let mut compat = Machine::with_config(compat_config(true)).expect("boot");
    let n = native.kernel_mut().syscall(172, 0).expect("syscall").cycles;
    let c = compat.kernel_mut().syscall(172, 0).expect("syscall").cycles;
    assert!(c > n, "compat {c} should exceed native {n}");
}

#[test]
fn same_source_different_core_same_semantics() {
    // The user-visible results are identical regardless of the core.
    let mut old = Machine::with_config(compat_config(false)).expect("boot");
    let mut new = Machine::with_config(compat_config(true)).expect("boot");
    let a = old.kernel_mut().syscall(172, 0).expect("syscall");
    let b = new.kernel_mut().syscall(172, 0).expect("syscall");
    assert_eq!(a.x0, b.x0);
    assert_eq!(a.syscalls, b.syscalls);
}
