//! The evaluation figures hold end to end (small iteration counts; the
//! full-size runs live in the bench harness and `reproduce`).

use camouflage::core::{Machine, ProtectionLevel};

#[test]
fn fig2_scheme_ordering() {
    use camouflage::codegen::CfiScheme;
    // Re-derive the Figure 2 ordering from the instrumented kernels
    // themselves (not just the microbenchmark): same syscall, four
    // backward-edge schemes.
    let cycles = |scheme: Option<CfiScheme>| {
        let mut cfg = camouflage::kernel::KernelConfig::default();
        match scheme {
            None => cfg.protection = ProtectionLevel::None,
            Some(s) => cfg.scheme_override = Some(s),
        }
        cfg.protection = if scheme.is_none() {
            ProtectionLevel::None
        } else {
            ProtectionLevel::BackwardEdge
        };
        let mut m = Machine::with_config(cfg).expect("boot");
        let k = m.kernel_mut();
        let _ = k.syscall(172, 0).expect("warm");
        let tid = k.current_task().tid;
        k.run_user(tid, "stub", 10, 172, 0).expect("run").cycles
    };
    let none = cycles(None);
    let sp = cycles(Some(CfiScheme::SpOnly));
    let camo = cycles(Some(CfiScheme::Camouflage));
    let parts = cycles(Some(CfiScheme::Parts));
    assert!(none < sp, "{none} < {sp}");
    assert!(sp < camo, "{sp} < {camo}");
    assert!(camo < parts, "{camo} < {parts}");
}

#[test]
fn fig3_syscall_overhead_is_double_digit_percent() {
    let mut base = Machine::with_protection(ProtectionLevel::None).expect("boot");
    let mut full = Machine::with_protection(ProtectionLevel::Full).expect("boot");
    let run = |m: &mut Machine| {
        let k = m.kernel_mut();
        let _ = k.syscall(63, 3).expect("warm");
        let tid = k.current_task().tid;
        k.run_user(tid, "stub", 10, 63, 3).expect("run").cycles as f64
    };
    let rel = run(&mut full) / run(&mut base);
    assert!(rel > 1.10, "double-digit overhead, got {rel:.3}");
    assert!(rel < 2.5, "sane upper bound, got {rel:.3}");
}

#[test]
fn key_switch_overhead_is_near_nine_cycles_per_key() {
    let mut machine = Machine::protected().expect("boot");
    let kernel = machine.kernel_mut();
    let setter = camouflage::kernel::layout::KEYSETTER_VA;
    let restore = kernel.symbol("restore_user_keys");
    let install = kernel.kexec(setter, &[]).expect("setter").cycles as f64 / 3.0;
    let restore = kernel.kexec(restore, &[]).expect("restore").cycles as f64 / 3.0;
    let avg = (install + restore) / 2.0;
    assert!(
        (6.0..14.0).contains(&avg),
        "≈9 cycles/key (paper §6.1.1), got {avg:.2}"
    );
}

#[test]
fn pac_space_matches_appendix_a() {
    use camouflage::mem::PointerLayout;
    assert_eq!(PointerLayout::kernel().pac_bits(), 15);
    assert_eq!(PointerLayout::user().pac_bits(), 7);
}
