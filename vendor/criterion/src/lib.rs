//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset of the criterion API the bench targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up, then
//! timed over `sample_size` samples whose per-iteration mean/min/max are
//! printed. There are no HTML reports, no outlier analysis, and no saved
//! baselines — the paper-reproduction numbers in this repo come from the
//! *simulated* cycle counts the benches print separately, not from these
//! wall-clock timings.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 50;
const WARMUP: Duration = Duration::from_millis(100);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Top-level benchmark driver, handed to each `criterion_group!` target.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named set of benchmarks sharing a sample-size configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.to_string());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back calls of the payload.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm up and find an iteration count that makes one sample take
    // roughly TARGET_SAMPLE_TIME, so short payloads aren't all timer noise.
    let mut iters: u64 = 1;
    let warmup_start = Instant::now();
    loop {
        let elapsed = time_once(&mut f, iters);
        if warmup_start.elapsed() >= WARMUP {
            if elapsed < TARGET_SAMPLE_TIME && iters < u64::MAX / 2 {
                let scale = TARGET_SAMPLE_TIME.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale.clamp(1.0, 1e6)) as u64).max(1);
            }
            break;
        }
        if elapsed < Duration::from_millis(5) && iters < u64::MAX / 2 {
            iters *= 2;
        }
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let elapsed = time_once(&mut f, iters);
        per_iter.push(elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));

    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "  {name:<40} mean {} (min {}, max {}) x{iters}",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>8.2} ms", secs * 1e3)
    } else {
        format!("{secs:>8.2} s ")
    }
}

/// Bundle benchmark functions into one group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
///
/// Ignores harness CLI flags (`--bench`, filters) that `cargo bench`
/// forwards — every registered benchmark always runs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        group.finish();
    }

    criterion_group!(benches, payload);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains("s"));
    }
}
