//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored shim
//! provides the (small) subset of the `rand` 0.8 API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`rngs::StdRng`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction the reference `rand` crate documents for seeding small
//! states. It is deterministic, fast, and statistically strong; it is NOT
//! cryptographically secure, which is fine for a simulator whose "secret"
//! PAC keys only need to be unpredictable to the simulated attacker.

use std::ops::{Range, RangeInclusive};

/// Marker trait for types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_u64(raw: u64) -> Self {
        // Use the top bit: the low bits of some generators are weaker.
        raw >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn from_u64(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open or inclusive range [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` via 128-bit widening multiply (Lemire).
#[inline]
fn sample_below(rng: &mut impl RngCore, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    // Widening multiply maps a u64 draw onto [0, span) with negligible
    // bias for the span sizes used in this workspace.
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

/// Raw 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Deterministic seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`: deterministic for a given seed,
    /// good statistical quality, not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..6usize);
            assert!(v < 6);
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
