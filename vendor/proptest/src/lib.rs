//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with [`strategy::Strategy::prop_map`];
//! * range, tuple, [`strategy::Just`], [`strategy::any`], and
//!   [`sample::select`] strategies;
//! * the [`prop_oneof!`], [`proptest!`], `prop_assert*!`, and
//!   [`prop_assume!`] macros.
//!
//! Semantics differ from real proptest in two deliberate ways: there is no
//! shrinking (a failing case panics with its inputs printed via the assert
//! message instead), and generation is deterministic per test name so CI
//! failures always reproduce locally. Case count defaults to 256 and can be
//! overridden with the `PROPTEST_CASES` environment variable.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The RNG handed to strategies; deterministic per property.
    pub type TestRng = StdRng;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking: `sample`
    /// draws one concrete value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[inline]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        #[inline]
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// Strategy for any value of `T`; see [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `proptest::prelude::any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                #[inline]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                #[inline]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_for_tuples {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuples! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// A boxed strategy, the element type of [`OneOf`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Helper used by [`crate::prop_oneof!`] to erase arm types.
    pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between boxed strategies of a common value type.
    pub struct OneOf<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }
}

pub mod sample {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice from a fixed set of values.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.items.len());
            self.items[i].clone()
        }
    }

    /// The `prop::sample::select` entry point.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    use crate::strategy::TestRng;

    /// Default number of cases per property; override with `PROPTEST_CASES`.
    pub const DEFAULT_CASES: u32 = 256;

    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES)
    }

    /// Deterministic RNG derived from the property name, so every run and
    /// every CI machine explores the same cases.
    pub fn rng_for(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3); // FNV-1a 64-bit prime
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Defines `#[test]` functions that run their body over many sampled inputs
/// (at least one `arg in strategy` binding per property).
///
/// No shrinking: a failing case panics immediately with the assert message.
/// The strategy expressions are built once, before the case loop; arguments
/// sample left to right from one deterministic RNG stream.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::test_runner::rng_for(stringify!($name));
            // A tuple of strategies is itself a strategy, so the (possibly
            // expensive) strategy tree is constructed once, not per case.
            let __proptest_strategy = ($(($strat),)+);
            for __proptest_case in 0..$crate::test_runner::cases() {
                let _ = __proptest_case;
                let ($($arg,)+) =
                    $crate::strategy::Strategy::sample(&__proptest_strategy, &mut __proptest_rng);
                $body
            }
        }
    )*};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 0u8..10, w in -4i16..=4) {
            prop_assert!(v < 10);
            prop_assert!((-4..=4).contains(&w));
        }

        #[test]
        fn map_and_oneof_compose(v in prop_oneof![
            (0u32..5).prop_map(|x| x * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 10));
        }

        #[test]
        fn assume_filters(pair in (0u8..10, 0u8..10)) {
            let (a, b) = pair;
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn select_draws_from_set(v in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!([1, 3, 5].contains(&v));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = 0u64..u64::MAX;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
