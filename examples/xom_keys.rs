//! Execute-only memory in action: the kernel keys are visible as
//! *instructions* only to the bootloader; after boot nobody can read them.
//!
//! ```sh
//! cargo run --example xom_keys
//! ```

use camouflage::boot::{Bootloader, KeySetter};
use camouflage::core::Machine;
use camouflage::isa::{disassemble, encode};
use camouflage::kernel::layout::KEYSETTER_VA;
use camouflage::mem::AccessType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Boot-time view: the bootloader generates the setter, so it can show
    // what the XOM page will contain (this knowledge dies with boot).
    let boot = Bootloader::new(0xC0FFEE);
    let insns = KeySetter::new(boot.keys()).generate();
    println!("key setter as only the bootloader ever sees it:");
    let words: Vec<u32> = insns.iter().map(encode).collect();
    for (i, line) in disassemble(&words).iter().enumerate().take(12) {
        println!("  {:#06x}: {line}", 4 * i);
    }
    println!("  ... ({} instructions total)\n", insns.len());

    // Run-time view: boot a machine and try to look at the same page.
    let mut machine = Machine::protected()?;
    let kernel = machine.kernel_mut();
    let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());

    let read = kernel.mem().read_u64(&ctx, KEYSETTER_VA);
    println!("kernel read of the setter page:  {read:?}");
    let write = kernel
        .mem()
        .translate(&ctx, KEYSETTER_VA, AccessType::Write);
    println!("kernel write to the setter page: {write:?}");
    let fetch = kernel.mem().fetch(&ctx, KEYSETTER_VA);
    println!(
        "kernel execute of the setter:    Ok({:#010x}) — calling it is allowed",
        fetch?
    );

    // And calling it is exactly what kernel entry does: measure the key
    // switch (§6.1.1).
    let out = kernel.kexec(KEYSETTER_VA, &[])?;
    println!(
        "\nexecuting the setter installs 3 keys in {} cycles ({:.1} cycles/key)",
        out.cycles,
        out.cycles as f64 / 3.0
    );
    println!(
        "key registers written via MSR so far: {}",
        kernel.cpu().stats().key_writes
    );
    Ok(())
}
