//! A classic kernel ROP attack, attempted against three kernels.
//!
//! The attacker (per the paper's §3.1 threat model) has an arbitrary
//! kernel-memory write and overwrites a saved return address on a kernel
//! stack with the address of a gadget. On the unprotected kernel the
//! gadget runs; on any PAuth-protected kernel the forged pointer fails
//! authentication and the §5.4 policy kills the offender.
//!
//! ```sh
//! cargo run --example rop_attack
//! ```

use camouflage::attacks::rop;
use camouflage::core::ProtectionLevel;

fn main() {
    println!("ROP injection: overwrite a saved LR with a raw gadget address\n");
    for level in ProtectionLevel::ALL {
        let result = rop::injection_attack(level);
        let verdict = if result.blocked {
            "BLOCKED  (authentication fault, attacker killed)"
        } else {
            "HIJACKED (gadget executed)"
        };
        println!("  kernel protection {:<14} -> {verdict}", level.to_string());
        println!("      outcome: {}", result.detail);
        assert!(result.matches_paper(), "outcome must match the paper");
    }
    println!("\nAll outcomes match the paper's claims.");
}
