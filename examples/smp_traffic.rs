//! SMP traffic: boot a multi-core cluster, migrate tasks between cores
//! with their PAuth key slots, trip the cluster-wide panic threshold from
//! a sibling core, then fan a syscall workload out across sharded
//! machines on host threads.
//!
//! ```sh
//! cargo run --release --example smp_traffic
//! ```

use camouflage::kernel::{KernelConfig, KernelError, KernelEvent};
use camouflage::smp::{Cluster, FleetDriver, TrafficPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── In-machine SMP ──────────────────────────────────────────────────
    let mut cluster = Cluster::protected(4)?;
    println!("booted a {}-core protected cluster", cluster.cpu_count());
    for cpu in cluster.kernel().cpus() {
        println!(
            "  core {}: {} key-register writes at boot (per-CPU XOM setter run)",
            cpu.id(),
            cpu.stats().key_writes
        );
    }

    // Tasks spread across runqueues; each runs on its home core with its
    // own per-thread user keys.
    let mut tids = Vec::new();
    for name in ["web", "db", "cache"] {
        let (tid, cpu) = cluster.spawn(name)?;
        println!("spawned {name:>5} as tid {tid} on core {cpu}");
        tids.push(tid);
    }
    for &tid in &tids {
        let out = cluster.run_task(tid, 4, 172, 0)?;
        assert!(out.fault.is_none());
    }

    // Migration: the thread_struct key slots live in shared memory, so
    // the destination core restores the task's own keys on next entry.
    let migrant = tids[0];
    cluster.kernel_mut().migrate_task(migrant, 3)?;
    let out = cluster.run_task(migrant, 4, 63, 3)?;
    println!(
        "migrated tid {migrant} to core 3; post-migration read returned {} ({} cycles)",
        out.x0, out.cycles
    );

    // The §5.4 panic threshold is cluster-wide: forged pointers guessed
    // on core 1 halt the whole machine.
    let mut cfg = KernelConfig::default();
    cfg.cpus = 2;
    cfg.pac_panic_threshold = 4;
    let mut victim = Cluster::boot(cfg)?;
    let kernel = victim.kernel_mut();
    let target = kernel.symbol("dev_read");
    let halt = loop {
        let work = kernel.init_work("dev_poll")?;
        let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
        let slot = work + u64::from(camouflage::kernel::layout::work_struct::FUNC);
        kernel.mem_mut().write_u64(&ctx, slot, target).unwrap();
        kernel.set_current_cpu(1); // guess from the sibling core
        match kernel.run_work(work) {
            Ok(_) => continue,
            Err(KernelError::PacPanic { failures }) => break failures,
            Err(e) => return Err(e.into()),
        }
    };
    let observed_on_1 = victim
        .kernel()
        .events()
        .iter()
        .filter(|e| matches!(e, KernelEvent::PacFailure { cpu: 1, .. }))
        .count();
    println!(
        "sibling-core brute force: halted after {halt} failures, {observed_on_1} observed on core 1"
    );

    // ── Host-parallel sharding ──────────────────────────────────────────
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nsharded traffic (host has {host_cores} core(s)):");
    println!(
        "{:>7} {:>10} {:>14} {:>16}",
        "shards", "syscalls", "wall st/s", "capacity st/s"
    );
    for shards in [1, 2, 4] {
        // The PR-3 traffic plan, served by the fleet engine as a single
        // lmbench tenant.
        let plan = TrafficPlan::new(shards, 4_000, 0xCAF0_0D5E).to_fleet();
        let par = FleetDriver::drive(&plan)?;
        let seq = FleetDriver::drive_sequential(&plan)?;
        assert!(
            par.simulation_identical(&seq),
            "sharding mode is architecturally invisible"
        );
        println!(
            "{:>7} {:>10} {:>14.0} {:>16.0}",
            shards,
            par.syscalls,
            par.steps_per_sec(),
            seq.capacity_steps_per_sec()
        );
    }
    println!("capacity scales with shards; wall scaling follows on multi-core hosts");
    Ok(())
}
