//! Multi-tenant fleet: four workloads as co-located tenants across
//! sharded machines, with per-tenant simulated-cycle latency percentiles
//! and the parallel ≡ sequential bit-identity check.
//!
//! ```sh
//! cargo run --release --example fleet
//! ```

use camouflage::smp::{FleetDriver, FleetPlan};
use camouflage::workloads::TenantSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four tenants share every shard machine, round-robin — a web tier on
    // the lmbench mix, a build farm forking constantly, a driver-CI rig
    // loading and unloading modules, and a batch tier that mostly context
    // switches and migrates.
    let mut plan = FleetPlan::new(
        4,
        0xCAF0_0D5E,
        vec![
            TenantSpec::lmbench("web", 2_000),
            TenantSpec::process_churn("build-farm", 80),
            TenantSpec::module_churn("driver-ci", 48),
            TenantSpec::tenant_mix("batch", 120),
        ],
    );
    plan.cpus_per_shard = 2;

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "fleet: {} tenants x {} shards x {} cores (host has {host_cores} core(s))\n",
        plan.tenants.len(),
        plan.shards,
        plan.cpus_per_shard
    );

    let par = FleetDriver::drive(&plan)?;
    let seq = FleetDriver::drive_sequential(&plan)?;
    assert!(
        par.simulation_identical(&seq),
        "execution mode must be invisible to the simulation"
    );

    println!(
        "{:<12} {:<18} {:>6} {:>9} {:>12} {:>8} {:>8} {:>8}",
        "tenant", "workload", "ops", "syscalls", "cycles", "p50", "p90", "p99"
    );
    for t in &par.tenants {
        println!(
            "{:<12} {:<18} {:>6} {:>9} {:>12} {:>8} {:>8} {:>8}",
            t.name,
            t.workload,
            t.totals.ops,
            t.totals.syscalls,
            t.totals.cycles,
            t.totals.latency.p50(),
            t.totals.latency.p90(),
            t.totals.latency.p99()
        );
    }

    println!(
        "\ntotals: {} syscalls, {} cycles | wall {:.3}s parallel, capacity {:.0} steps/s",
        par.syscalls,
        par.cycles,
        par.wall_secs,
        seq.capacity_steps_per_sec()
    );
    println!(
        "parallel and sequential runs agree bit-for-bit on every tenant's \
         counters and latency histogram"
    );

    // The per-tenant stats show *why* the mixes cost what they cost.
    let by_name = |name: &str| par.tenants.iter().find(|t| t.name == name).unwrap();
    let batch = by_name("batch");
    let web = by_name("web");
    println!(
        "\nbatch tenant performed {} key-register writes across {} ops (key switching dominates);",
        batch.totals.stats.key_writes, batch.totals.ops
    );
    println!(
        "web tenant authenticated {} pointers serving {} syscalls (forward-edge CFI in the fast path)",
        web.totals.stats.pac_auth_ok, web.totals.syscalls
    );
    Ok(())
}
