//! Loadable-module lifecycle: §4.1 verification and §4.6 run-time linkage.
//!
//! Three modules are presented to the kernel:
//!
//! 1. a clean driver — loads, and its statically-initialised work callback
//!    is signed in place at load time, then authenticated when run;
//! 2. a module that reads a PAuth key register — rejected;
//! 3. a module that writes `SCTLR_EL1` — rejected.
//!
//! ```sh
//! cargo run --example module_verification
//! ```

use camouflage::codegen::{FunctionBuilder, Program, StaticPointerTable};
use camouflage::core::Machine;
use camouflage::isa::{Insn, Reg, SysReg};
use camouflage::kernel::KernelError;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::protected()?;
    let cfg = machine.kernel().codegen_config();

    // 1. A clean module.
    let mut clean = Program::new(cfg);
    let mut entry = FunctionBuilder::new("driver_init", cfg).locals(32);
    entry.ins(Insn::AddImm {
        rd: Reg::x(0),
        rn: Reg::x(0),
        imm12: 1,
        shifted: false,
    });
    clean.push(entry.build());
    let handle = machine
        .kernel_mut()
        .load_module(clean, &StaticPointerTable::new())?;
    println!(
        "clean module loaded at {:#x}; verifier found nothing",
        handle.base_va
    );
    let init = handle.image.symbol("driver_init").expect("symbol");
    let out = machine.kernel_mut().kexec(init, &[1])?;
    println!("driver_init(1) -> {} ({} cycles)\n", out.x0, out.cycles);

    // 2. A module that tries to exfiltrate key material.
    let mut evil = Program::new(cfg);
    let mut steal = FunctionBuilder::new("steal_keys", cfg);
    steal.ins(Insn::Mrs {
        rt: Reg::x(0),
        sr: SysReg::ApibKeyLoEl1,
    });
    evil.push(steal.build());
    match machine
        .kernel_mut()
        .load_module(evil, &StaticPointerTable::new())
    {
        Err(KernelError::ModuleRejected { violations }) => {
            println!("key-reading module rejected:");
            for v in violations {
                println!("  {v}");
            }
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // 3. A module that tries to switch PAuth off.
    let mut evil = Program::new(cfg);
    let mut disable = FunctionBuilder::new("disable_pauth", cfg);
    disable.ins(Insn::Movz {
        rd: Reg::x(0),
        imm16: 0,
        shift: 0,
    });
    disable.ins(Insn::Msr {
        sr: SysReg::SctlrEl1,
        rt: Reg::x(0),
    });
    evil.push(disable.build());
    match machine
        .kernel_mut()
        .load_module(evil, &StaticPointerTable::new())
    {
        Err(KernelError::ModuleRejected { violations }) => {
            println!("\nSCTLR-writing module rejected:");
            for v in violations {
                println!("  {v}");
            }
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // §4.6 run-time linkage: INIT_WORK signs the callback in place; the
    // workqueue authenticates it before the indirect call.
    let work = machine.kernel_mut().init_work("dev_poll")?;
    let out = machine.kernel_mut().run_work(work)?;
    println!(
        "\nwork item ran through authenticated callback in {} cycles (fault: {:?})",
        out.cycles, out.fault
    );
    Ok(())
}
