//! Quickstart: boot a Camouflage-protected machine, run syscalls, look at
//! the PAuth activity underneath.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use camouflage::core::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Boot the full stack: bootloader generates kernel PAuth keys, bakes
    // them into the XOM key setter, the hypervisor seals the page, and the
    // instrumented kernel comes up and installs its keys by *executing*
    // the setter.
    let mut machine = Machine::protected()?;
    println!(
        "booted: protection={}, backward-edge scheme={}",
        machine.protection(),
        machine.scheme()
    );

    // A null syscall: full simulated round trip (SVC, vectored entry,
    // pt_regs save, key switch, instrumented call chain, key restore,
    // ERET).
    let out = machine.kernel_mut().syscall(172, 0)?; // getpid
    println!(
        "getpid -> {} in {} cycles / {} instructions",
        out.x0, out.cycles, out.instructions
    );

    // A read: dispatches through the DFI-protected f_ops pointer
    // (Listing 4 of the paper).
    let before = machine.kernel().cpu().stats();
    let out = machine.kernel_mut().syscall(63, 3)?; // read(fd 3)
    let after = machine.kernel().cpu().stats();
    println!(
        "read   -> {} cycles; PAC signs +{}, authentications +{}",
        out.cycles,
        after.pac_signs - before.pac_signs,
        after.pac_auth_ok - before.pac_auth_ok
    );

    // Context switch between two tasks: §5.2 signs the outgoing stack
    // pointer and authenticates the incoming one.
    let a = machine.kernel_mut().spawn("worker-a")?;
    let b = machine.kernel_mut().spawn("worker-b")?;
    let out = machine.kernel_mut().context_switch(a, b)?;
    println!("cpu_switch_to({a} -> {b}) took {} cycles", out.cycles);

    // The machine keeps a forensic log of PAC failures (§6.2.3); a benign
    // run has none.
    println!(
        "PAC failures so far: {} (events logged: {})",
        machine.kernel().pac_failures(),
        machine.kernel().events().len()
    );
    Ok(())
}
