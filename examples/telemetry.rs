//! Streaming stats plane: the same four-tenant fleet as the `fleet`
//! example with per-shard ring-buffer telemetry switched on, printing
//! each tenant's time series — cycles per window, translation-cache hit
//! rate, PAC failures — and proving the windows sum back to the
//! end-of-run totals.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use camouflage::cpu::CpuStats;
use camouflage::smp::{FleetDriver, FleetPlan};
use camouflage::workloads::TenantSpec;

/// Rows printed per tenant; long series elide the middle.
const MAX_ROWS: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut plan = FleetPlan::new(
        2,
        0xCAF0_0D5E,
        vec![
            TenantSpec::lmbench("web", 2_000),
            TenantSpec::process_churn("build-farm", 80),
            TenantSpec::module_churn("driver-ci", 48),
            TenantSpec::tenant_mix("batch", 120),
        ],
    );
    plan.cpus_per_shard = 2;
    plan.telemetry = true;

    println!(
        "telemetry: {} tenants x {} shards x {} cores, stats plane on\n",
        plan.tenants.len(),
        plan.shards,
        plan.cpus_per_shard
    );

    let report = FleetDriver::drive(&plan)?;

    for t in &report.tenants {
        println!(
            "{} ({}): {} windows across the run",
            t.name,
            t.workload,
            t.series.len()
        );
        println!(
            "  {:>4} {:>5} {:>12} {:>10} {:>9}",
            "win", "ops", "cycles", "xlate hit%", "pac fail"
        );
        let elide = t.series.len() > MAX_ROWS;
        let head = if elide { MAX_ROWS - 2 } else { t.series.len() };
        for (i, w) in t.series.iter().enumerate() {
            if elide && i == head {
                println!("  {:>4}", "...");
            }
            if elide && i >= head && i + 2 < t.series.len() {
                continue;
            }
            let s = &w.stats;
            let lookups = s.block_hits + s.block_misses + s.trace_hits + s.trace_misses;
            let hit_rate = if lookups == 0 {
                0.0
            } else {
                100.0 * (s.block_hits + s.trace_hits) as f64 / lookups as f64
            };
            println!(
                "  {:>4} {:>5} {:>12} {:>9.1}% {:>9}",
                i, w.ops, w.cycles, hit_rate, s.pac_auth_fail
            );
        }

        // Lossless accounting: merge the windows back together and they
        // reproduce the tenant's end-of-run totals exactly.
        let mut merged = CpuStats::default();
        let mut cycles = 0;
        for w in &t.series {
            merged.merge(&w.stats);
            cycles += w.cycles;
        }
        assert_eq!(cycles, t.totals.cycles, "window cycles must sum exactly");
        assert_eq!(merged, t.totals.stats, "window stats must sum exactly");
        println!(
            "  sum of windows == end-of-run totals ({} cycles, {} pac auths)\n",
            t.totals.cycles, merged.pac_auth_ok
        );
    }

    println!(
        "fleet totals: {} syscalls, {} cycles — telemetry observed every op \
         without moving a single counter",
        report.syscalls, report.cycles
    );
    Ok(())
}
