//! The replay matrix: why Camouflage's modifier beats SP-only and PARTS.
//!
//! Two replay attacks, three backward-edge schemes:
//!
//! * **same SP, different function** — defeats Clang's SP-only modifier;
//! * **same function, stacks 64 KiB apart** — defeats PARTS' 16-bit SP
//!   field (kernel stacks sit at exact multiples of 2¹⁶, §7).
//!
//! Camouflage's `low32(SP) ‖ low32(fn)` modifier blocks both.
//!
//! ```sh
//! cargo run --example replay_matrix
//! ```

use camouflage::attacks::rop;
use camouflage::core::CfiScheme;

fn main() {
    let schemes = [CfiScheme::SpOnly, CfiScheme::Parts, CfiScheme::Camouflage];
    println!(
        "{:<14} {:>28} {:>28}",
        "scheme", "same-SP cross-function", "cross-thread 64KiB"
    );
    for scheme in schemes {
        let cross_fn = rop::replay_same_sp_cross_function(scheme);
        let cross_thread = rop::replay_cross_thread_same_function(scheme);
        println!(
            "{:<14} {:>28} {:>28}",
            scheme.to_string(),
            if cross_fn.blocked {
                "blocked"
            } else {
                "REPLAYED"
            },
            if cross_thread.blocked {
                "blocked"
            } else {
                "REPLAYED"
            },
        );
        assert!(cross_fn.matches_paper() && cross_thread.matches_paper());
    }
    println!();
    let residual = rop::replay_same_context_residual(CfiScheme::Camouflage);
    println!(
        "residual risk (identical function + SP): {} — the paper's §6.2.1 caveat",
        if residual.blocked {
            "blocked"
        } else {
            "replayable"
        }
    );
}
