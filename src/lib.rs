//! Camouflage: hardware-assisted CFI for an ARM Linux-like kernel,
//! reproduced on a simulated AArch64/PAuth substrate.
//!
//! This facade re-exports the whole workspace. See the [`camo_core`]
//! documentation for the top-level `Machine` API. The crate-level
//! documentation below is the repository `README.md` verbatim, so its
//! code snippets compile and run as doctests of this crate.
//!
#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use camo_analysis as analysis;
pub use camo_attacks as attacks;
pub use camo_boot as boot;
pub use camo_codegen as codegen;
pub use camo_core as core;
pub use camo_cpu as cpu;
pub use camo_isa as isa;
pub use camo_kernel as kernel;
pub use camo_lmbench as lmbench;
pub use camo_mem as mem;
pub use camo_qarma as qarma;
pub use camo_smp as smp;
pub use camo_workloads as workloads;
